// Tests for src/verify: the dynamic SPMD protocol verifier (collective
// matching, deadlock watchdog, leak analysis, topology routing) and the
// offline trace lint engine.
//
// Each defect-class test runs an intentionally broken SPMD body under
// World::enable_verify() and asserts the structured, rank-attributed
// finding — never a hang, never a process abort. The clean-run tests pin
// the zero-false-positive guarantee the fuzz suites extend.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/session.hpp"
#include "matrix/random.hpp"
#include "simmpi/comm.hpp"
#include "support/check.hpp"
#include "verify/lint.hpp"
#include "verify/report.hpp"
#include "verify/verifier.hpp"

namespace parsyrk {
namespace {

using comm::Comm;
using comm::World;
using verify::FindingKind;
using verify::VerifyError;
using verify::VerifyReport;

/// Runs `body` on a verifying world of `ranks` ranks and returns the report
/// of the VerifyError it must throw.
VerifyReport expect_verify_failure(int ranks,
                                   const std::function<void(Comm&)>& body) {
  World world(ranks);
  world.enable_verify();
  try {
    world.run(body);
  } catch (const VerifyError& e) {
    EXPECT_FALSE(e.report().empty());
    return e.report();
  }
  ADD_FAILURE() << "expected a VerifyError";
  return {};
}

// ---------------------------------------------------------------------------
// Analysis 1: collective matching
// ---------------------------------------------------------------------------

TEST(VerifyCollective, KindMismatchNamesBothSites) {
  const auto report = expect_verify_failure(2, [](Comm& comm) {
    std::vector<double> x(4, 1.0);
    if (comm.rank() == 0) {
      comm.all_gather_bruck(x);
    } else {
      comm.reduce_scatter_bruck(x);
    }
  });
  ASSERT_TRUE(report.has(FindingKind::kCollectiveKindMismatch))
      << report.to_string();
  const auto* f = report.first(FindingKind::kCollectiveKindMismatch);
  // One of the two ranks is the divergent poster; the other defined the slot.
  EXPECT_NE(f->rank, -1);
  EXPECT_NE(f->peer, -1);
  EXPECT_NE(f->rank, f->peer);
  EXPECT_NE(f->detail.find("all_gather_bruck"), std::string::npos) << f->detail;
  EXPECT_NE(f->detail.find("reduce_scatter_bruck"), std::string::npos)
      << f->detail;
}

TEST(VerifyCollective, CountMismatch) {
  const auto report = expect_verify_failure(2, [](Comm& comm) {
    std::vector<double> mine(comm.rank() == 0 ? 3 : 5, 1.0);
    comm.all_gather(mine);
  });
  ASSERT_TRUE(report.has(FindingKind::kCollectiveCountMismatch))
      << report.to_string();
}

TEST(VerifyCollective, RootMismatch) {
  const auto report = expect_verify_failure(2, [](Comm& comm) {
    std::vector<double> data(4, static_cast<double>(comm.rank()));
    comm.bcast(data, /*root=*/comm.rank() == 0 ? 0 : 1);
  });
  ASSERT_TRUE(report.has(FindingKind::kCollectiveRootMismatch))
      << report.to_string();
}

TEST(VerifyCollective, SequenceLengthMismatch) {
  // Rank 0 scatters (root-side: sends only, so it completes); rank 1 never
  // posts the collective. Scope end must flag the differing collective
  // counts — and the never-received scatter part as a leak.
  const auto report = expect_verify_failure(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::vector<double>> parts{{1.0}, {2.0}};
      comm.scatter(parts, /*root=*/0);
    }
  });
  ASSERT_TRUE(report.has(FindingKind::kCollectiveSeqMismatch))
      << report.to_string();
  ASSERT_TRUE(report.has(FindingKind::kMessageLeak)) << report.to_string();
}

// ---------------------------------------------------------------------------
// Analysis 2: deadlock detection (the watchdog replaces the hang)
// ---------------------------------------------------------------------------

TEST(VerifyDeadlock, RecvCycleReported) {
  // The classic SPMD bug: both ranks receive before sending. Without the
  // verifier this hangs forever; with it, the confirmed cycle is thrown.
  const auto report = expect_verify_failure(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    auto got = comm.recv(peer, 0);  // never satisfiable
    comm.send(peer, 0, std::vector<double>{1.0});
  });
  ASSERT_TRUE(report.has(FindingKind::kDeadlockCycle)) << report.to_string();
  const auto* f = report.first(FindingKind::kDeadlockCycle);
  // The cycle annotation names both ranks and what each waits for.
  EXPECT_NE(f->detail.find("rank 0"), std::string::npos) << f->detail;
  EXPECT_NE(f->detail.find("rank 1"), std::string::npos) << f->detail;
}

TEST(VerifyDeadlock, ThreeRankCycle) {
  const auto report = expect_verify_failure(3, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    auto got = comm.recv(next, 3);  // 0<-1<-2<-0: a 3-cycle
    comm.send(next, 3, std::vector<double>{2.0});
  });
  ASSERT_TRUE(report.has(FindingKind::kDeadlockCycle)) << report.to_string();
}

TEST(VerifyDeadlock, StrandedRecvOnFinishedPeer) {
  // Rank 1 exits without ever sending; rank 0's receive can never be
  // satisfied. Reported as a stranded wait (not a cycle).
  const auto report = expect_verify_failure(2, [](Comm& comm) {
    if (comm.rank() == 0) comm.recv(1, 9);
  });
  ASSERT_TRUE(report.has(FindingKind::kStrandedWait)) << report.to_string();
  const auto* f = report.first(FindingKind::kStrandedWait);
  EXPECT_EQ(f->rank, 0);
  EXPECT_EQ(f->peer, 1);
}

TEST(VerifyDeadlock, StrandedBarrierOnFinishedPeer) {
  const auto report = expect_verify_failure(2, [](Comm& comm) {
    if (comm.rank() == 0) comm.barrier();  // rank 1 skips it
  });
  ASSERT_TRUE(report.has(FindingKind::kStrandedWait)) << report.to_string();
}

TEST(VerifyDeadlock, RequestWaitTripsWatchdog) {
  // Nonblocking handles block inside Request::wait, not the mailbox pop —
  // the watchdog must cover that path too.
  const auto report = expect_verify_failure(2, [](Comm& comm) {
    if (comm.rank() == 0) comm.irecv(1, 5).wait();
  });
  ASSERT_TRUE(report.has(FindingKind::kStrandedWait)) << report.to_string();
}

// ---------------------------------------------------------------------------
// Analysis 3: leaks at job boundaries
// ---------------------------------------------------------------------------

TEST(VerifyLeak, UnreceivedMessageAttributed) {
  const auto report = expect_verify_failure(2, [](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 11, std::vector<double>(7, 1.0));
  });
  ASSERT_TRUE(report.has(FindingKind::kMessageLeak)) << report.to_string();
  const auto* f = report.first(FindingKind::kMessageLeak);
  EXPECT_EQ(f->rank, 1);  // the mailbox holding the orphan
  EXPECT_EQ(f->peer, 0);  // the rank that sent it
  EXPECT_NE(f->detail.find('7'), std::string::npos) << f->detail;
}

TEST(VerifyLeak, AbandonedRequestReported) {
  const auto report = expect_verify_failure(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto pending = comm.irecv(1, 5);  // dropped without wait()
    }
  });
  ASSERT_TRUE(report.has(FindingKind::kRequestLeak)) << report.to_string();
  EXPECT_EQ(report.first(FindingKind::kRequestLeak)->rank, 0);
}

TEST(VerifyLeak, WorldUsableAfterVerifyError) {
  // Verification failures are recoverable: the world is reset before the
  // throw, so the next (correct) job runs normally.
  World world(2);
  world.enable_verify();
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 0, std::vector<double>{1.0});
  }),
               VerifyError);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<double>{5.0});
    } else {
      auto got = comm.recv(0, 0);
      EXPECT_DOUBLE_EQ(got[0], 5.0);
    }
  });
}

// ---------------------------------------------------------------------------
// Analysis 4: topology routing
// ---------------------------------------------------------------------------

TEST(VerifyTopology, LeaderBypassCaught) {
  // Simulates a buggy hierarchical schedule: rank 1 (non-leader of node 0)
  // sends inter-node to rank 3 (non-leader of node 1) inside a declared
  // hierarchical scope. The send itself must throw.
  World world(4);
  world.enable_verify();
  world.set_topology(2);
  verify::Verifier* v = world.verifier();
  ASSERT_NE(v, nullptr);
  try {
    world.run([&](Comm& comm) {
      if (comm.rank() == 1) {
        v->on_hier_begin(1);
        comm.send(3, 0, std::vector<double>(8, 1.0));
        v->on_hier_end(1);
      } else if (comm.rank() == 3) {
        auto got = comm.recv(1, 0);
      }
    });
    FAIL() << "expected a VerifyError";
  } catch (const VerifyError& e) {
    ASSERT_TRUE(e.report().has(FindingKind::kLeaderBypass))
        << e.report().to_string();
    const auto* f = e.report().first(FindingKind::kLeaderBypass);
    EXPECT_EQ(f->rank, 1);
    EXPECT_EQ(f->peer, 3);
  }
}

TEST(VerifyTopology, HierarchicalCollectivesRouteClean) {
  // The shipped two-level schedules must satisfy their own invariant.
  World world(4);
  world.enable_verify();
  world.set_topology(2);
  world.run([](Comm& comm) {
    std::vector<double> data(8, static_cast<double>(comm.rank() + 1));
    std::vector<std::size_t> sizes(4, 2);
    auto mine = comm.reduce_scatter_hier(data, sizes);
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_DOUBLE_EQ(mine[0], 1.0 + 2.0 + 3.0 + 4.0);
  });
}

// ---------------------------------------------------------------------------
// Clean runs: no false positives
// ---------------------------------------------------------------------------

TEST(VerifyClean, CollectiveMixRunsClean) {
  World world(4);
  world.enable_verify();
  world.run([](Comm& comm) {
    std::vector<double> x(8, static_cast<double>(comm.rank()));
    auto summed = comm.all_reduce(x);
    auto gathered = comm.all_gather(x);
    comm.barrier();
    std::vector<double> b(4, 0.0);
    if (comm.rank() == 2) b.assign(4, 9.0);
    comm.bcast(b, /*root=*/2);
    EXPECT_DOUBLE_EQ(b[0], 9.0);
    auto r = comm.iall_gather(x);
    auto all = r.take();
    EXPECT_EQ(all.size(), 32u);
    EXPECT_DOUBLE_EQ(summed[0], 0.0 + 1.0 + 2.0 + 3.0);
    EXPECT_EQ(gathered.size(), 32u);
  });
}

TEST(VerifyClean, SubCommunicatorsRunClean) {
  World world(4);
  world.enable_verify();
  world.run([](Comm& comm) {
    Comm half = comm.split(comm.rank() % 2, comm.rank());
    std::vector<double> x(2, static_cast<double>(comm.rank()));
    auto all = half.all_gather(x);
    EXPECT_EQ(all.size(), 4u);
    half.barrier();
  });
}

TEST(VerifyClean, SyrkRequestWithVerify) {
  core::Session session(6);
  Matrix a = random_matrix(48, 16, /*seed=*/3);
  const Matrix ref = [&] {
    Matrix c(48, 48);
    for (std::size_t i = 0; i < 48; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double s = 0;
        for (std::size_t k = 0; k < 16; ++k) s += a(i, k) * a(j, k);
        c(i, j) = s;
      }
    }
    return c;
  }();
  auto check = [&](const core::SyrkRun& run) {
    for (std::size_t i = 0; i < 48; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        EXPECT_NEAR(run.c(i, j), ref(i, j), 1e-9);
      }
    }
  };
  check(core::syrk(session, core::SyrkRequest(a).with_verify()));
  check(core::syrk(session, core::SyrkRequest(a).use_1d().with_verify()));
  check(core::syrk(session, core::SyrkRequest(a).use_2d(2).with_verify()));
  EXPECT_TRUE(session.world().verifying());
}

TEST(VerifyClean, TopologyAndPipelineRequestsRunClean) {
  core::Session session(6);
  Matrix a = random_matrix(36, 12, /*seed=*/5);
  auto base = core::syrk(session, core::SyrkRequest(a).use_1d());
  auto topo = core::syrk(session, core::SyrkRequest(a)
                                      .use_1d()
                                      .with_topology(3)
                                      .with_reduce(core::ReduceKind::kHierarchical)
                                      .with_verify());
  auto piped = core::syrk(
      session, core::SyrkRequest(a).use_1d().with_pipeline(2).with_verify());
  for (std::size_t i = 0; i < 36; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(topo.c(i, j), base.c(i, j), 1e-12);
      EXPECT_DOUBLE_EQ(piped.c(i, j), base.c(i, j));
    }
  }
}

TEST(VerifyClean, EnvVariableEnablesVerification) {
  ASSERT_EQ(setenv("PARSYRK_VERIFY", "1", /*overwrite=*/1), 0);
  World world(2);
  EXPECT_TRUE(world.verifying());
  ASSERT_EQ(unsetenv("PARSYRK_VERIFY"), 0);
  World flat(2);
  EXPECT_FALSE(flat.verifying());
}

// ---------------------------------------------------------------------------
// Offline lint engine (the trace_lint tool's core)
// ---------------------------------------------------------------------------

verify::LintEvent lint_event(int rank, int peer, bool sent,
                             std::uint64_t words, const char* phase) {
  verify::LintEvent e;
  e.rank = rank;
  e.peer = peer;
  e.sent = sent;
  e.kind = 0;
  e.kind_name = "point-to-point";
  e.words = words;
  e.phase = phase;
  return e;
}

TEST(VerifyLint, BalancedTraceIsClean) {
  verify::LintInput in;
  in.ranks = 2;
  in.events = {lint_event(0, 1, true, 10, "reduce_C"),
               lint_event(1, 0, false, 10, "reduce_C")};
  EXPECT_TRUE(verify::lint_trace(in).empty());
}

TEST(VerifyLint, UnmatchedSendFlagged) {
  verify::LintInput in;
  in.ranks = 2;
  in.events = {lint_event(0, 1, true, 10, "reduce_C")};
  const auto report = verify::lint_trace(in);
  ASSERT_TRUE(report.has(FindingKind::kTraceImbalance)) << report.to_string();
  const auto* f = report.first(FindingKind::kTraceImbalance);
  EXPECT_EQ(f->rank, 0);
  EXPECT_EQ(f->peer, 1);
}

TEST(VerifyLint, WordCountMismatchFlagged) {
  verify::LintInput in;
  in.ranks = 2;
  in.events = {lint_event(0, 1, true, 10, "gather_A"),
               lint_event(1, 0, false, 8, "gather_A")};
  EXPECT_TRUE(verify::lint_trace(in).has(FindingKind::kTraceImbalance));
}

TEST(VerifyLint, DroppedEventsCannotCertify) {
  verify::LintInput in;
  in.ranks = 2;
  in.dropped = true;
  const auto report = verify::lint_trace(in);
  ASSERT_TRUE(report.has(FindingKind::kTraceImbalance)) << report.to_string();
}

TEST(VerifyLint, TierBalanceUsesTopology) {
  // Sender logs the transfer as crossing nodes, receiver as intra-node:
  // per-pair flow balances, but the inter-node tier totals cannot.
  verify::LintInput in;
  in.ranks = 4;
  in.ranks_per_node = 2;
  // (0 -> 3) is inter-node; both sides agree, so this lints clean.
  in.events = {lint_event(0, 3, true, 6, "reduce_C"),
               lint_event(3, 0, false, 6, "reduce_C")};
  EXPECT_TRUE(verify::lint_trace(in).empty());
  // A receiver that books the words against a different peer breaks the
  // pair flows even though global totals match.
  in.events = {lint_event(0, 3, true, 6, "reduce_C"),
               lint_event(3, 2, false, 6, "reduce_C")};
  EXPECT_FALSE(verify::lint_trace(in).empty());
}

// ---------------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------------

TEST(VerifyReportFormat, FindingRendersKindRankAndDetail) {
  verify::Finding f;
  f.kind = FindingKind::kMessageLeak;
  f.rank = 3;
  f.peer = 1;
  f.job = 7;
  f.detail = "9 words, tag 4";
  const std::string s = f.to_string();
  EXPECT_NE(s.find("message-leak"), std::string::npos) << s;
  EXPECT_NE(s.find("rank 3"), std::string::npos) << s;
  EXPECT_NE(s.find("9 words"), std::string::npos) << s;
}

TEST(VerifyReportFormat, ErrorCarriesReport) {
  VerifyReport report;
  report.findings.push_back({FindingKind::kStrandedWait, 0, 1, 0, 2, "x"});
  VerifyError err(report);
  EXPECT_TRUE(err.report().has(FindingKind::kStrandedWait));
  EXPECT_NE(std::string(err.what()).find("stranded-wait"), std::string::npos);
}

}  // namespace
}  // namespace parsyrk
