// Randomized fuzz tests for the message-passing runtime: random sequences
// of collectives over random sub-communicators, validated against a
// sequential oracle computed from the same seeds. Exercises collective
// interleaving, tag-space isolation between operations, and communicator
// splitting under load.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "simmpi/comm.hpp"
#include "simmpi/job_queue.hpp"
#include "simmpi/worker_pool.hpp"
#include "support/rng.hpp"

namespace parsyrk::comm {
namespace {

/// Deterministic payload for (round, rank, slot).
double val(int round, int rank, int slot) {
  return round * 1e6 + rank * 1e3 + slot;
}

class FuzzWorlds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzWorlds, RandomCollectiveSequences) {
  const std::uint64_t seed = GetParam();
  Rng planner(seed);
  const int p = static_cast<int>(planner.uniform_int(2, 13));
  const int rounds = static_cast<int>(planner.uniform_int(5, 25));
  // Pre-plan the operation sequence so every rank follows the same script.
  std::vector<int> ops(rounds);
  std::vector<int> sizes(rounds);
  std::vector<int> roots(rounds);
  for (int r = 0; r < rounds; ++r) {
    ops[r] = static_cast<int>(planner.uniform_int(0, 5));
    sizes[r] = static_cast<int>(planner.uniform_int(1, 9));
    roots[r] = static_cast<int>(planner.uniform_int(0, p - 1));
  }

  World world(p);
  world.run([&](Comm& comm) {
    for (int r = 0; r < rounds; ++r) {
      const int n = sizes[r];
      switch (ops[r]) {
        case 0: {  // all_gather
          std::vector<double> mine(n, val(r, comm.rank(), 0));
          auto all = comm.all_gather(mine);
          for (int s = 0; s < p; ++s) {
            for (int t = 0; t < n; ++t) {
              ASSERT_DOUBLE_EQ(all[s * n + t], val(r, s, 0));
            }
          }
          break;
        }
        case 1: {  // reduce_scatter_equal
          std::vector<double> data(n * p);
          for (int b = 0; b < p; ++b) {
            for (int t = 0; t < n; ++t) {
              data[b * n + t] = val(r, comm.rank(), b);
            }
          }
          auto mine = comm.reduce_scatter_equal(data);
          double expect = 0.0;
          for (int s = 0; s < p; ++s) expect += val(r, s, comm.rank());
          for (double x : mine) ASSERT_DOUBLE_EQ(x, expect);
          break;
        }
        case 2: {  // all_to_all_v with rank-dependent sizes
          std::vector<std::vector<double>> send(p);
          for (int d = 0; d < p; ++d) {
            send[d].assign((comm.rank() + d) % 3 + 1, val(r, comm.rank(), d));
          }
          auto recv = comm.all_to_all_v(send);
          for (int s = 0; s < p; ++s) {
            ASSERT_EQ(recv[s].size(),
                      static_cast<std::size_t>((s + comm.rank()) % 3 + 1));
            for (double x : recv[s]) {
              ASSERT_DOUBLE_EQ(x, val(r, s, comm.rank()));
            }
          }
          break;
        }
        case 3: {  // bcast
          std::vector<double> data(n);
          if (comm.rank() == roots[r]) {
            for (int t = 0; t < n; ++t) data[t] = val(r, roots[r], t);
          }
          comm.bcast(data, roots[r]);
          for (int t = 0; t < n; ++t) {
            ASSERT_DOUBLE_EQ(data[t], val(r, roots[r], t));
          }
          break;
        }
        case 4: {  // reduce
          std::vector<double> data(n, comm.rank() + 1.0);
          auto out = comm.reduce(data, roots[r]);
          if (comm.rank() == roots[r]) {
            for (double x : out) ASSERT_DOUBLE_EQ(x, p * (p + 1) / 2.0);
          }
          break;
        }
        case 5: {  // split + nested collective + implicit merge
          const int color = comm.rank() % 2;
          Comm sub = comm.split(color, comm.rank());
          auto ids = sub.all_gather(std::vector<double>{
              static_cast<double>(comm.rank())});
          // Members of my color, in rank order.
          int expect = color;
          for (double x : ids) {
            ASSERT_DOUBLE_EQ(x, expect);
            expect += 2;
          }
          break;
        }
        default:
          FAIL();
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzWorlds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(FuzzStress, ManySmallMessagesInterleaved) {
  // Point-to-point storm: every rank sends `k` tagged messages to every
  // other rank, then receives them in reverse tag order.
  const int p = 6, k = 20;
  World world(p);
  world.run([&](Comm& comm) {
    for (int d = 0; d < p; ++d) {
      if (d == comm.rank()) continue;
      for (int t = 0; t < k; ++t) {
        comm.send(d, t, std::vector<double>{val(t, comm.rank(), d)});
      }
    }
    for (int s = 0; s < p; ++s) {
      if (s == comm.rank()) continue;
      for (int t = k - 1; t >= 0; --t) {
        auto msg = comm.recv(s, t);
        ASSERT_EQ(msg.size(), 1u);
        ASSERT_DOUBLE_EQ(msg[0], val(t, s, comm.rank()));
      }
    }
  });
  // Ledger sanity: every rank sent exactly (p-1)*k messages of 1 word.
  for (const auto& r : world.ledger().per_rank()) {
    EXPECT_EQ(r.msgs_sent, static_cast<std::uint64_t>((p - 1) * k));
    EXPECT_EQ(r.words_sent, static_cast<std::uint64_t>((p - 1) * k));
  }
}

TEST(FuzzStress, RepeatedSplitsReuseGroups) {
  // Splitting with identical colors many times must neither leak nor
  // confuse message routing.
  const int p = 8;
  World world(p);
  world.run([&](Comm& comm) {
    for (int iter = 0; iter < 10; ++iter) {
      Comm sub = comm.split(comm.rank() / 4, comm.rank());
      auto sum = sub.reduce(std::vector<double>{1.0}, 0);
      if (sub.rank() == 0) ASSERT_DOUBLE_EQ(sum[0], 4.0);
      sub.barrier();
    }
  });
}

TEST(FuzzStress, ConcurrentDisjointSubcommunicators) {
  // Four disjoint groups run different collectives simultaneously.
  const int p = 12;
  World world(p);
  world.run([&](Comm& comm) {
    const int color = comm.rank() % 4;
    Comm sub = comm.split(color, comm.rank());
    ASSERT_EQ(sub.size(), 3);
    for (int iter = 0; iter < 5; ++iter) {
      switch (color) {
        case 0: {
          auto v = sub.all_gather(std::vector<double>{1.0 * sub.rank()});
          ASSERT_EQ(v.size(), 3u);
          break;
        }
        case 1: {
          auto v = sub.reduce_scatter_equal(std::vector<double>(6, 1.0));
          for (double x : v) ASSERT_DOUBLE_EQ(x, 3.0);
          break;
        }
        case 2: {
          std::vector<double> d(2, sub.rank() == 1 ? 9.0 : 0.0);
          sub.bcast(d, 1);
          ASSERT_DOUBLE_EQ(d[0], 9.0);
          break;
        }
        default: {
          auto v = sub.all_gather_bruck(std::vector<double>{5.0});
          ASSERT_EQ(v.size(), 3u);
          break;
        }
      }
    }
  });
}

class FuzzJobQueues : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzJobQueues, RandomJobSequencesWithFailures) {
  // Random sequences of SPMD jobs drained through one JobQueue on a warm
  // pool; one randomly chosen job throws on a random rank at a random
  // point. Exactly that job must error, every other job must produce the
  // same results and per-job costs as on a fresh world, and the pool must
  // survive (no threads created after warmup).
  const std::uint64_t seed = GetParam();
  Rng planner(seed);
  const int p = static_cast<int>(planner.uniform_int(2, 11));
  const int jobs = static_cast<int>(planner.uniform_int(4, 13));
  const int bad_job = static_cast<int>(planner.uniform_int(0, jobs - 1));
  const int bad_rank = static_cast<int>(planner.uniform_int(0, p - 1));

  std::vector<int> kinds(jobs), sizes(jobs), fail_round(jobs, -1);
  for (int j = 0; j < jobs; ++j) {
    kinds[j] = static_cast<int>(planner.uniform_int(0, 2));
    sizes[j] = static_cast<int>(planner.uniform_int(1, 7));
  }
  fail_round[bad_job] = static_cast<int>(planner.uniform_int(0, 2));

  // Each job runs 3 rounds of one collective kind; a failing job throws on
  // bad_rank before its fail_round-th round, leaving peers blocked inside
  // the collective to be unwound by poisoning.
  auto make_body = [&](int j) {
    const int kind = kinds[j], n = sizes[j], fail = fail_round[j];
    return [kind, n, fail, bad_rank, p](Comm& comm) {
      for (int round = 0; round < 3; ++round) {
        if (round == fail && comm.rank() == bad_rank) {
          throw std::runtime_error("fuzzed failure");
        }
        switch (kind) {
          case 0: {
            auto all =
                comm.all_gather(std::vector<double>(n, 1.0 * comm.rank()));
            ASSERT_EQ(all.size(), static_cast<std::size_t>(n * p));
            break;
          }
          case 1: {
            auto mine = comm.reduce_scatter_equal(
                std::vector<double>(static_cast<std::size_t>(n) * p, 1.0));
            for (double x : mine) ASSERT_DOUBLE_EQ(x, 1.0 * p);
            break;
          }
          default: {
            Comm sub = comm.split(comm.rank() % 2, comm.rank());
            auto ids = sub.all_gather(
                std::vector<double>{1.0 * comm.world_rank()});
            ASSERT_EQ(ids.size(), static_cast<std::size_t>(sub.size()));
            break;
          }
        }
      }
    };
  };

  // Reference per-job costs from fresh worlds (skipping the poisoned job —
  // its partial traffic is unspecified).
  std::vector<CostSummary> fresh(jobs);
  for (int j = 0; j < jobs; ++j) {
    if (j == bad_job) continue;
    World world(p);
    world.run(make_body(j));
    fresh[j] = world.ledger().summary();
  }

  WorkerPool pool;
  World world(p, pool);
  const std::uint64_t warm = pool.threads_created();
  JobQueue queue(world);
  for (int j = 0; j < jobs; ++j) queue.enqueue(make_body(j));
  auto results = queue.drain();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    if (j == bad_job) {
      EXPECT_FALSE(results[j].ok()) << "job " << j;
      EXPECT_THROW(results[j].rethrow(), std::runtime_error);
      continue;
    }
    EXPECT_TRUE(results[j].ok()) << "job " << j;
    EXPECT_EQ(results[j].cost.total, fresh[j].total) << "job " << j;
    EXPECT_EQ(results[j].cost.max, fresh[j].max) << "job " << j;
  }
  EXPECT_EQ(pool.threads_created(), warm);
  // The world stays fully usable after the drained failure.
  world.run([](Comm& comm) {
    auto all = comm.all_gather(std::vector<double>{3.0});
    ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzJobQueues,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28, 29,
                                           30, 31, 32));

}  // namespace
}  // namespace parsyrk::comm
