// Randomized fuzz tests for the message-passing runtime: random sequences
// of collectives over random sub-communicators, validated against a
// sequential oracle computed from the same seeds. Exercises collective
// interleaving, tag-space isolation between operations, and communicator
// splitting under load.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/session.hpp"
#include "matrix/random.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/job_queue.hpp"
#include "simmpi/worker_pool.hpp"
#include "support/rng.hpp"

namespace parsyrk::comm {
namespace {

// The fuzz suite doubles as the verifier's zero-false-positive gate: every
// randomized world below runs with full SPMD protocol verification on, so
// any over-eager invariant (collective matching, watchdog, leak or ledger
// checks) fails loudly here before it can reject a correct program.
const bool kVerifyEnabled = [] {
  setenv("PARSYRK_VERIFY", "1", /*overwrite=*/1);
  return true;
}();

/// Deterministic payload for (round, rank, slot).
double val(int round, int rank, int slot) {
  return round * 1e6 + rank * 1e3 + slot;
}

class FuzzWorlds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzWorlds, RandomCollectiveSequences) {
  const std::uint64_t seed = GetParam();
  Rng planner(seed);
  const int p = static_cast<int>(planner.uniform_int(2, 13));
  const int rounds = static_cast<int>(planner.uniform_int(5, 25));
  // Pre-plan the operation sequence so every rank follows the same script.
  std::vector<int> ops(rounds);
  std::vector<int> sizes(rounds);
  std::vector<int> roots(rounds);
  for (int r = 0; r < rounds; ++r) {
    ops[r] = static_cast<int>(planner.uniform_int(0, 5));
    sizes[r] = static_cast<int>(planner.uniform_int(1, 9));
    roots[r] = static_cast<int>(planner.uniform_int(0, p - 1));
  }

  World world(p);
  world.run([&](Comm& comm) {
    for (int r = 0; r < rounds; ++r) {
      const int n = sizes[r];
      switch (ops[r]) {
        case 0: {  // all_gather
          std::vector<double> mine(n, val(r, comm.rank(), 0));
          auto all = comm.all_gather(mine);
          for (int s = 0; s < p; ++s) {
            for (int t = 0; t < n; ++t) {
              ASSERT_DOUBLE_EQ(all[s * n + t], val(r, s, 0));
            }
          }
          break;
        }
        case 1: {  // reduce_scatter_equal
          std::vector<double> data(n * p);
          for (int b = 0; b < p; ++b) {
            for (int t = 0; t < n; ++t) {
              data[b * n + t] = val(r, comm.rank(), b);
            }
          }
          auto mine = comm.reduce_scatter_equal(data);
          double expect = 0.0;
          for (int s = 0; s < p; ++s) expect += val(r, s, comm.rank());
          for (double x : mine) ASSERT_DOUBLE_EQ(x, expect);
          break;
        }
        case 2: {  // all_to_all_v with rank-dependent sizes
          std::vector<std::vector<double>> send(p);
          for (int d = 0; d < p; ++d) {
            send[d].assign((comm.rank() + d) % 3 + 1, val(r, comm.rank(), d));
          }
          auto recv = comm.all_to_all_v(send);
          for (int s = 0; s < p; ++s) {
            ASSERT_EQ(recv[s].size(),
                      static_cast<std::size_t>((s + comm.rank()) % 3 + 1));
            for (double x : recv[s]) {
              ASSERT_DOUBLE_EQ(x, val(r, s, comm.rank()));
            }
          }
          break;
        }
        case 3: {  // bcast
          std::vector<double> data(n);
          if (comm.rank() == roots[r]) {
            for (int t = 0; t < n; ++t) data[t] = val(r, roots[r], t);
          }
          comm.bcast(data, roots[r]);
          for (int t = 0; t < n; ++t) {
            ASSERT_DOUBLE_EQ(data[t], val(r, roots[r], t));
          }
          break;
        }
        case 4: {  // reduce
          std::vector<double> data(n, comm.rank() + 1.0);
          auto out = comm.reduce(data, roots[r]);
          if (comm.rank() == roots[r]) {
            for (double x : out) ASSERT_DOUBLE_EQ(x, p * (p + 1) / 2.0);
          }
          break;
        }
        case 5: {  // split + nested collective + implicit merge
          const int color = comm.rank() % 2;
          Comm sub = comm.split(color, comm.rank());
          auto ids = sub.all_gather(std::vector<double>{
              static_cast<double>(comm.rank())});
          // Members of my color, in rank order.
          int expect = color;
          for (double x : ids) {
            ASSERT_DOUBLE_EQ(x, expect);
            expect += 2;
          }
          break;
        }
        default:
          FAIL();
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzWorlds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(FuzzStress, ManySmallMessagesInterleaved) {
  // Point-to-point storm: every rank sends `k` tagged messages to every
  // other rank, then receives them in reverse tag order.
  const int p = 6, k = 20;
  World world(p);
  world.run([&](Comm& comm) {
    for (int d = 0; d < p; ++d) {
      if (d == comm.rank()) continue;
      for (int t = 0; t < k; ++t) {
        comm.send(d, t, std::vector<double>{val(t, comm.rank(), d)});
      }
    }
    for (int s = 0; s < p; ++s) {
      if (s == comm.rank()) continue;
      for (int t = k - 1; t >= 0; --t) {
        auto msg = comm.recv(s, t);
        ASSERT_EQ(msg.size(), 1u);
        ASSERT_DOUBLE_EQ(msg[0], val(t, s, comm.rank()));
      }
    }
  });
  // Ledger sanity: every rank sent exactly (p-1)*k messages of 1 word.
  for (const auto& r : world.ledger().per_rank()) {
    EXPECT_EQ(r.msgs_sent, static_cast<std::uint64_t>((p - 1) * k));
    EXPECT_EQ(r.words_sent, static_cast<std::uint64_t>((p - 1) * k));
  }
}

TEST(FuzzStress, RepeatedSplitsReuseGroups) {
  // Splitting with identical colors many times must neither leak nor
  // confuse message routing.
  const int p = 8;
  World world(p);
  world.run([&](Comm& comm) {
    for (int iter = 0; iter < 10; ++iter) {
      Comm sub = comm.split(comm.rank() / 4, comm.rank());
      auto sum = sub.reduce(std::vector<double>{1.0}, 0);
      if (sub.rank() == 0) ASSERT_DOUBLE_EQ(sum[0], 4.0);
      sub.barrier();
    }
  });
}

TEST(FuzzStress, ConcurrentDisjointSubcommunicators) {
  // Four disjoint groups run different collectives simultaneously.
  const int p = 12;
  World world(p);
  world.run([&](Comm& comm) {
    const int color = comm.rank() % 4;
    Comm sub = comm.split(color, comm.rank());
    ASSERT_EQ(sub.size(), 3);
    for (int iter = 0; iter < 5; ++iter) {
      switch (color) {
        case 0: {
          auto v = sub.all_gather(std::vector<double>{1.0 * sub.rank()});
          ASSERT_EQ(v.size(), 3u);
          break;
        }
        case 1: {
          auto v = sub.reduce_scatter_equal(std::vector<double>(6, 1.0));
          for (double x : v) ASSERT_DOUBLE_EQ(x, 3.0);
          break;
        }
        case 2: {
          std::vector<double> d(2, sub.rank() == 1 ? 9.0 : 0.0);
          sub.bcast(d, 1);
          ASSERT_DOUBLE_EQ(d[0], 9.0);
          break;
        }
        default: {
          auto v = sub.all_gather_bruck(std::vector<double>{5.0});
          ASSERT_EQ(v.size(), 3u);
          break;
        }
      }
    }
  });
}

class FuzzJobQueues : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzJobQueues, RandomJobSequencesWithFailures) {
  // Random sequences of SPMD jobs drained through one JobQueue on a warm
  // pool; one randomly chosen job throws on a random rank at a random
  // point. Exactly that job must error, every other job must produce the
  // same results and per-job costs as on a fresh world, and the pool must
  // survive (no threads created after warmup).
  const std::uint64_t seed = GetParam();
  Rng planner(seed);
  const int p = static_cast<int>(planner.uniform_int(2, 11));
  const int jobs = static_cast<int>(planner.uniform_int(4, 13));
  const int bad_job = static_cast<int>(planner.uniform_int(0, jobs - 1));
  const int bad_rank = static_cast<int>(planner.uniform_int(0, p - 1));

  std::vector<int> kinds(jobs), sizes(jobs), fail_round(jobs, -1);
  for (int j = 0; j < jobs; ++j) {
    kinds[j] = static_cast<int>(planner.uniform_int(0, 2));
    sizes[j] = static_cast<int>(planner.uniform_int(1, 7));
  }
  fail_round[bad_job] = static_cast<int>(planner.uniform_int(0, 2));

  // Each job runs 3 rounds of one collective kind; a failing job throws on
  // bad_rank before its fail_round-th round, leaving peers blocked inside
  // the collective to be unwound by poisoning.
  auto make_body = [&](int j) {
    const int kind = kinds[j], n = sizes[j], fail = fail_round[j];
    return [kind, n, fail, bad_rank, p](Comm& comm) {
      for (int round = 0; round < 3; ++round) {
        if (round == fail && comm.rank() == bad_rank) {
          throw std::runtime_error("fuzzed failure");
        }
        switch (kind) {
          case 0: {
            auto all =
                comm.all_gather(std::vector<double>(n, 1.0 * comm.rank()));
            ASSERT_EQ(all.size(), static_cast<std::size_t>(n * p));
            break;
          }
          case 1: {
            auto mine = comm.reduce_scatter_equal(
                std::vector<double>(static_cast<std::size_t>(n) * p, 1.0));
            for (double x : mine) ASSERT_DOUBLE_EQ(x, 1.0 * p);
            break;
          }
          default: {
            Comm sub = comm.split(comm.rank() % 2, comm.rank());
            auto ids = sub.all_gather(
                std::vector<double>{1.0 * comm.world_rank()});
            ASSERT_EQ(ids.size(), static_cast<std::size_t>(sub.size()));
            break;
          }
        }
      }
    };
  };

  // Reference per-job costs from fresh worlds (skipping the poisoned job —
  // its partial traffic is unspecified).
  std::vector<CostSummary> fresh(jobs);
  for (int j = 0; j < jobs; ++j) {
    if (j == bad_job) continue;
    World world(p);
    world.run(make_body(j));
    fresh[j] = world.ledger().summary();
  }

  WorkerPool pool;
  World world(p, pool);
  const std::uint64_t warm = pool.threads_created();
  JobQueue queue(world);
  for (int j = 0; j < jobs; ++j) queue.enqueue(make_body(j));
  auto results = queue.drain();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    if (j == bad_job) {
      EXPECT_FALSE(results[j].ok()) << "job " << j;
      EXPECT_THROW(results[j].rethrow(), std::runtime_error);
      continue;
    }
    EXPECT_TRUE(results[j].ok()) << "job " << j;
    EXPECT_EQ(results[j].cost.total, fresh[j].total) << "job " << j;
    EXPECT_EQ(results[j].cost.max, fresh[j].max) << "job " << j;
  }
  EXPECT_EQ(pool.threads_created(), warm);
  // The world stays fully usable after the drained failure.
  world.run([](Comm& comm) {
    auto all = comm.all_gather(std::vector<double>{3.0});
    ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzJobQueues,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28, 29,
                                           30, 31, 32));

// ---------------------------------------------------------------------------
// Nonblocking-interleaving fuzzer
// ---------------------------------------------------------------------------

class FuzzNonblocking : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzNonblocking, RandomizedTestWaitOrderings) {
  // Every rank posts a batch of nonblocking collectives up front, then
  // drives them with an independently seeded RANDOM test() ordering —
  // receives complete out of order across handles and within rounds. The
  // engine's round discipline must keep results equal to the blocking
  // oracle and the ledger volume equal to a blocking reference run,
  // regardless of the interleaving.
  const std::uint64_t seed = GetParam();
  Rng planner(seed);
  const int p = static_cast<int>(planner.uniform_int(2, 9));
  const int n_ops = static_cast<int>(planner.uniform_int(2, 7));
  std::vector<int> kinds(n_ops), sizes(n_ops);
  for (int i = 0; i < n_ops; ++i) {
    kinds[i] = static_cast<int>(planner.uniform_int(0, 3));
    sizes[i] = static_cast<int>(planner.uniform_int(1, 6));
  }

  // Per-op result checkers against the deterministic payload oracle.
  auto verify = [&](Comm& comm, int i, Request& req) {
    const int n = sizes[i];
    switch (kinds[i]) {
      case 0: {  // iall_gather
        auto all = req.take();
        ASSERT_EQ(all.size(), static_cast<std::size_t>(n * p));
        for (int s = 0; s < p; ++s) {
          for (int t = 0; t < n; ++t) {
            ASSERT_DOUBLE_EQ(all[s * n + t], val(i, s, 0));
          }
        }
        break;
      }
      case 1: {  // ireduce_scatter (equal blocks)
        auto mine = req.take();
        ASSERT_EQ(mine.size(), static_cast<std::size_t>(n));
        double expect = 0.0;
        for (int s = 0; s < p; ++s) expect += val(i, s, comm.rank());
        for (double x : mine) ASSERT_DOUBLE_EQ(x, expect);
        break;
      }
      case 2: {  // iall_to_all_v with rank-dependent sizes
        auto recv = req.take_parts();
        for (int s = 0; s < p; ++s) {
          ASSERT_EQ(recv[s].size(),
                    static_cast<std::size_t>((s + comm.rank()) % 3 + 1));
          for (double x : recv[s]) ASSERT_DOUBLE_EQ(x, val(i, s, comm.rank()));
        }
        break;
      }
      default: {  // irecv of the ring isend
        auto msg = req.take();
        const int src = (comm.rank() - 1 + p) % p;
        ASSERT_EQ(msg.size(), static_cast<std::size_t>(n));
        for (double x : msg) ASSERT_DOUBLE_EQ(x, val(i, src, 0));
        break;
      }
    }
  };

  auto post_all = [&](Comm& comm, std::vector<Request>& reqs) {
    for (int i = 0; i < n_ops; ++i) {
      const int n = sizes[i];
      switch (kinds[i]) {
        case 0: {
          std::vector<double> mine(n, val(i, comm.rank(), 0));
          reqs.push_back(comm.iall_gather(mine));
          break;
        }
        case 1: {
          std::vector<double> data(static_cast<std::size_t>(n) * p);
          for (int b = 0; b < p; ++b) {
            for (int t = 0; t < n; ++t) data[b * n + t] = val(i, comm.rank(), b);
          }
          reqs.push_back(comm.ireduce_scatter(
              data, std::vector<std::size_t>(p, static_cast<std::size_t>(n))));
          break;
        }
        case 2: {
          std::vector<std::vector<double>> send(p);
          for (int d = 0; d < p; ++d) {
            send[d].assign((comm.rank() + d) % 3 + 1, val(i, comm.rank(), d));
          }
          reqs.push_back(comm.iall_to_all_v(send));
          break;
        }
        default: {
          std::vector<double> payload(n, val(i, comm.rank(), 0));
          (void)comm.isend((comm.rank() + 1) % p, /*tag=*/i, payload);
          reqs.push_back(comm.irecv((comm.rank() - 1 + p) % p, /*tag=*/i));
          break;
        }
      }
    }
  };

  // Blocking reference: same script, wait immediately in posting order.
  World ref(p);
  ref.run([&](Comm& comm) {
    std::vector<Request> reqs;
    post_all(comm, reqs);
    for (int i = 0; i < n_ops; ++i) verify(comm, i, reqs[i]);
  });
  const CostSummary ref_cost = ref.ledger().summary();

  World world(p);
  world.run([&](Comm& comm) {
    Rng rng(seed * 977 + static_cast<std::uint64_t>(comm.rank()) + 1);
    std::vector<Request> reqs;
    post_all(comm, reqs);
    // Random polling until every handle completes (no blocking wait, so
    // completions interleave arbitrarily across handles and ranks).
    int incomplete = n_ops;
    std::uint64_t spins = 0;
    while (incomplete > 0) {
      const int i = static_cast<int>(rng.uniform_int(0, n_ops - 1));
      if (reqs[i].done()) continue;
      if (reqs[i].test()) --incomplete;
      ASSERT_LT(++spins, 100000000ull) << "nonblocking progress stalled";
    }
    for (int i = 0; i < n_ops; ++i) verify(comm, i, reqs[i]);
  });

  // Total moved volume is schedule-invariant.
  const CostSummary cost = world.ledger().summary();
  EXPECT_EQ(cost.total, ref_cost.total);
  EXPECT_EQ(cost.max, ref_cost.max);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzNonblocking,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48, 49,
                                           50, 51, 52, 53, 54, 55, 56));

// ---------------------------------------------------------------------------
// Chunked-SYRK fuzzer: pipelined == blocking across all three grids
// ---------------------------------------------------------------------------

class FuzzChunkedSyrk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzChunkedSyrk, MatchesBlockingAcrossGridsAndChunkCounts) {
  namespace core = ::parsyrk::core;
  const std::uint64_t seed = GetParam();
  Rng planner(seed);
  const int grid = static_cast<int>(planner.uniform_int(0, 2));
  const int chunks = static_cast<int>(planner.uniform_int(1, 9));

  std::size_t n1 = 0, n2 = 0;
  int ranks = 0;
  std::uint64_t c = 2, p2 = 2;
  switch (grid) {
    case 0:  // 1D
      ranks = static_cast<int>(planner.uniform_int(2, 8));
      n1 = planner.uniform_int(6, 20);
      n2 = planner.uniform_int(4, 24);
      break;
    case 1:  // 2D: c = 2 needs n1 % 4 == 0 on c(c+1) = 6 ranks
      ranks = 6;
      n1 = 4 * planner.uniform_int(2, 6);
      n2 = planner.uniform_int(4, 16);
      break;
    default:  // 3D: (c=2, p2) grid on 6·p2 ranks
      p2 = planner.uniform_int(2, 3);
      ranks = static_cast<int>(6 * p2);
      n1 = 4 * planner.uniform_int(2, 6);
      n2 = planner.uniform_int(static_cast<std::uint64_t>(p2), 16);
      break;
  }
  Matrix a = random_matrix(n1, n2, seed);

  auto run_once = [&](int pipeline_chunks) {
    core::Session session(ranks);
    core::SyrkRequest req(a);
    switch (grid) {
      case 0: req.use_1d(); break;
      case 1: req.use_2d(c); break;
      default: req.use_3d(c, p2); break;
    }
    if (pipeline_chunks > 0) req.with_pipeline(pipeline_chunks);
    return core::syrk(session, req);
  };

  const core::SyrkRun blocking = run_once(0);
  const core::SyrkRun piped = run_once(chunks);
  // Bitwise result equality for ANY chunk count (accumulation order is
  // preserved per entry), and exact word-volume equality.
  EXPECT_TRUE(piped.c == blocking.c)
      << "grid=" << grid << " chunks=" << chunks << " n1=" << n1
      << " n2=" << n2;
  EXPECT_EQ(piped.total.total.words_sent, blocking.total.total.words_sent);
  EXPECT_EQ(piped.total.total.words_recv, blocking.total.total.words_recv);
  EXPECT_EQ(piped.total.max.words_sent, blocking.total.max.words_sent);
  EXPECT_GE(piped.total.total.msgs_sent, blocking.total.total.msgs_sent);
  if (chunks == 1) {
    EXPECT_EQ(piped.total.total.msgs_sent, blocking.total.total.msgs_sent);
    EXPECT_EQ(piped.total.max.msgs_sent, blocking.total.max.msgs_sent);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzChunkedSyrk,
                         ::testing::Values(61, 62, 63, 64, 65, 66, 67, 68, 69,
                                           70, 71, 72, 73, 74, 75, 76, 77, 78,
                                           79, 80));

}  // namespace
}  // namespace parsyrk::comm
