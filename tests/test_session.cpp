// Session / SyrkRequest: the unified entry point on a warm worker pool.
//
// The acceptance checks from the executor redesign: (1) 100+ sequential
// requests on ONE session produce bitwise-identical matrices and identical
// per-job ledger counts to fresh-world runs of the same problems, and (2)
// no thread is created across the whole request loop after the session's
// construction.
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "core/memory.hpp"
#include "core/session.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/check.hpp"

namespace parsyrk::core {
namespace {

/// Bitwise matrix equality (not tolerance-based: a warm pool must replay
/// exactly the arithmetic of a fresh world).
bool bitwise_equal(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* xr = x.data() + i * x.ld();
    const double* yr = y.data() + i * y.ld();
    if (std::memcmp(xr, yr, x.cols() * sizeof(double)) != 0) return false;
  }
  return true;
}

/// The Plan a pre-1.x explicit entry point implied for `procs` ranks.
Plan explicit_plan(Algorithm algorithm, std::uint64_t procs, std::uint64_t c,
                   std::uint64_t p2) {
  Plan plan;
  plan.algorithm = algorithm;
  plan.procs = procs;
  plan.c = c;
  plan.p1 = (algorithm == Algorithm::kOneD) ? 1 : c * (c + 1);
  plan.p2 = (algorithm == Algorithm::kOneD) ? procs : p2;
  return plan;
}

/// Result + whole-world cost of `plan` executed on a fresh, exactly sized
/// world — the reference a warm session must reproduce bitwise.
struct FreshRun {
  Matrix c;
  comm::CostSummary cost;
};

FreshRun fresh_run(const Matrix& a, const Plan& plan,
                   const SyrkOptions& opts = {}) {
  comm::World w(static_cast<int>(plan.logical_ranks()),
                static_cast<int>(plan.procs));
  FreshRun out;
  out.c = internal::run_syrk_plan(w, a, plan, opts);
  out.cost = w.ledger().summary();
  return out;
}

TEST(Session, PlannerRequestMatchesFreshWorldRun) {
  Matrix a = random_matrix(24, 48, 1);
  const Plan plan = plan_syrk(24, 48, 12);
  const FreshRun fresh = fresh_run(a, plan);

  Session session(12);
  const SyrkRun warm = syrk(session, SyrkRequest(a));
  EXPECT_EQ(warm.plan.algorithm, plan.algorithm);
  EXPECT_EQ(warm.plan.procs, plan.procs);
  EXPECT_TRUE(bitwise_equal(warm.c, fresh.c));
  EXPECT_EQ(warm.total.total, fresh.cost.total);
  EXPECT_EQ(warm.total.max, fresh.cost.max);
}

TEST(Session, HundredJobsBitwiseAndCostIdenticalToFreshWorlds) {
  // Four request kinds cycled 25x on one 12-rank session; references are
  // computed once on fresh, exactly-sized worlds.
  Matrix a1 = random_matrix(24, 48, 7);   // planner -> 1D at P=12
  Matrix a2 = random_matrix(48, 16, 8);   // 2D, c=2 -> 6 ranks (guard split)
  Matrix a3 = random_matrix(24, 24, 9);   // 3D, c=2, p2=2 -> 12 ranks
  const int kKinds = 4;

  std::vector<Matrix> ref_c(kKinds);
  std::vector<comm::CostSummary> ref_cost(kKinds);
  {
    auto r = fresh_run(a1, explicit_plan(Algorithm::kOneD, 12, 0, 12));
    ref_c[0] = std::move(r.c);
    ref_cost[0] = r.cost;
  }
  {
    auto r = fresh_run(a2, explicit_plan(Algorithm::kTwoD, 6, 2, 1));
    ref_c[1] = std::move(r.c);
    ref_cost[1] = r.cost;
  }
  {
    auto r = fresh_run(a3, explicit_plan(Algorithm::kThreeD, 12, 2, 2));
    ref_c[2] = std::move(r.c);
    ref_cost[2] = r.cost;
  }
  {
    SyrkOptions opts;
    opts.root = 1;
    auto r = fresh_run(a1, explicit_plan(Algorithm::kOneD, 12, 0, 12), opts);
    ref_c[3] = std::move(r.c);
    ref_cost[3] = r.cost;
  }

  comm::WorkerPool pool;
  Session session(12, pool);
  const std::uint64_t warm_threads = pool.threads_created();
  ASSERT_EQ(warm_threads, 12u);

  for (int job = 0; job < 100; ++job) {
    const int kind = job % kKinds;
    SyrkRun run;
    switch (kind) {
      case 0:
        run = syrk(session, SyrkRequest(a1).use_1d());
        break;
      case 1:
        run = syrk(session, SyrkRequest(a2).use_2d(2));
        break;
      case 2:
        run = syrk(session, SyrkRequest(a3).use_3d(2, 2));
        break;
      default:
        run = syrk(session, SyrkRequest(a1).use_1d().from_root(1));
        break;
    }
    ASSERT_TRUE(bitwise_equal(run.c, ref_c[kind])) << "job " << job;
    ASSERT_EQ(run.total.total, ref_cost[kind].total) << "job " << job;
    ASSERT_EQ(run.total.max, ref_cost[kind].max) << "job " << job;
  }
  EXPECT_EQ(session.jobs_run(), 100u);
  // The tentpole guarantee: zero thread creation across the request loop.
  EXPECT_EQ(pool.threads_created(), warm_threads);
}

TEST(Session, RootRequestReportsScatterPhase) {
  Matrix a = random_matrix(20, 30, 3);
  Session session(5);
  const SyrkRun run = syrk(session, SyrkRequest(a).use_1d().from_root(0));
  Matrix ref = syrk_reference(a.view());
  EXPECT_LT(max_abs_diff(run.c.view(), ref.view()), 1e-9);
  // The root scatters n1*n2*(1-1/P) words of A.
  EXPECT_EQ(run.scatter_a.total.words_sent, 20u * 30u * 4u / 5u);
  EXPECT_GT(run.reduce_c.total.words_sent, 0u);
}

TEST(Session, SmallerPlansRunOnActiveSubsetWithExactCosts) {
  // A 2D c=2 plan (6 ranks) on a 12-rank session must measure exactly what
  // a 6-rank world measures — the guard split is ledger-muted.
  Matrix a = random_matrix(16, 8, 4);
  const FreshRun ref = fresh_run(a, explicit_plan(Algorithm::kTwoD, 6, 2, 1));

  Session session(12);
  const SyrkRun run = syrk(session, SyrkRequest(a).use_2d(2));
  EXPECT_EQ(run.plan.procs, 6u);
  EXPECT_TRUE(bitwise_equal(run.c, ref.c));
  EXPECT_EQ(run.total.total, ref.cost.total);
  EXPECT_EQ(run.total.max, ref.cost.max);
}

TEST(Session, ResolvePlanHonorsExplicitGrids) {
  Matrix a = random_matrix(36, 12, 5);
  Session session(24);
  EXPECT_EQ(resolve_plan(session, SyrkRequest(a).use_2d(3)).procs, 12u);
  EXPECT_EQ(resolve_plan(session, SyrkRequest(a).use_3d(2, 4)).procs, 24u);
  const Plan p1 = resolve_plan(session, SyrkRequest(a).use_1d(10));
  EXPECT_EQ(p1.procs, 10u);
  EXPECT_EQ(p1.p2, 10u);
  // Planner default caps at the session size.
  EXPECT_LE(resolve_plan(session, SyrkRequest(a)).procs, 24u);
  EXPECT_LE(resolve_plan(session, SyrkRequest(a).on_procs(6)).procs,
            6u);
}

TEST(Session, OversizedRequestThrows) {
  Matrix a = random_matrix(16, 8, 6);
  Session session(4);
  EXPECT_THROW(syrk(session, SyrkRequest(a).use_2d(2)),  // needs 6 > 4
               InvalidArgument);
  EXPECT_THROW(syrk(session, SyrkRequest(a).use_1d(9)), InvalidArgument);
}

TEST(Session, RootWithNon1dThrows) {
  Matrix a = random_matrix(16, 8, 6);
  Session session(6);
  EXPECT_THROW(syrk(session, SyrkRequest(a).use_2d(2).from_root(0)),
               InvalidArgument);
  EXPECT_THROW(syrk(session, SyrkRequest(a).use_1d().from_root(6)),
               InvalidArgument);
}

TEST(Session, MemoryLimitSelectsAFittingPlan) {
  Matrix a = random_matrix(32, 32, 2);
  Session session(12);
  // Generous limit: some plan fits and executes correctly.
  const SyrkRun run =
      syrk(session, SyrkRequest(a).with_memory_limit(1u << 20));
  Matrix ref = syrk_reference(a.view());
  EXPECT_LT(max_abs_diff(run.c.view(), ref.view()), 1e-9);
  const auto aware = plan_syrk_memory_aware(32, 32, 12, 1u << 20);
  ASSERT_TRUE(aware.has_value());
  EXPECT_EQ(run.plan.procs, aware->plan.procs);
  // Impossible limit: the request must fail loudly.
  EXPECT_THROW(syrk(session, SyrkRequest(a).with_memory_limit(1)),
               InvalidArgument);
}

TEST(Session, MixesWithDirectWorldJobs) {
  // Callers can interleave their own SPMD jobs with syrk() requests on the
  // session's world; request-scoped summaries stay correct.
  Matrix a = random_matrix(24, 48, 11);
  Session session(12);
  const SyrkRun first = syrk(session, SyrkRequest(a).use_1d());
  session.world().run([](comm::Comm& comm) {
    comm.all_gather(std::vector<double>{1.0 * comm.rank()});
  });
  const SyrkRun second = syrk(session, SyrkRequest(a).use_1d());
  EXPECT_TRUE(bitwise_equal(first.c, second.c));
  EXPECT_EQ(first.total.total, second.total.total);
}

}  // namespace
}  // namespace parsyrk::core
