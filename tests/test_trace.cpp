// Unit tests for the per-message trace layer: event recording (kinds,
// phases, ordinals), ledger/trace consistency, zero-cost-when-off, ring
// overflow accounting, and both exporters (Chrome tracing JSON, binary
// golden format).
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/trace.hpp"
#include "simmpi/worker_pool.hpp"
#include "support/check.hpp"
#include "trace/export.hpp"

namespace parsyrk {
namespace {

using comm::JobTrace;
using comm::OpKind;
using comm::TraceDir;
using comm::TraceEvent;

/// Runs one traced job on a private world and returns its drained trace.
template <typename Body>
JobTrace traced_job(int ranks, Body body,
                    std::size_t capacity = comm::TraceSink::kDefaultCapacity) {
  comm::World world(ranks);
  world.enable_tracing(capacity);
  world.run(body);
  return world.trace_sink()->drain(/*poisoned=*/false);
}

TEST(Trace, OffByDefault) {
  comm::World world(4);
  EXPECT_FALSE(world.tracing());
  EXPECT_EQ(world.trace_sink(), nullptr);
  world.run([](comm::Comm& comm) {
    auto all = comm.all_gather(std::vector<double>{1.0 * comm.rank()});
    ASSERT_EQ(all.size(), 4u);
  });
  EXPECT_FALSE(world.tracing());

  // Untraced requests leave SyrkRun::trace empty.
  Matrix a = random_matrix(24, 48, 1);
  core::Session session(6);
  const auto run = core::syrk(session, core::SyrkRequest(a));
  EXPECT_FALSE(run.trace.has_value());
}

TEST(Trace, TracedRequestCarriesJobTrace) {
  Matrix a = random_matrix(24, 48, 1);
  core::Session session(6);
  const auto run = core::syrk(session, core::SyrkRequest(a).with_trace());
  ASSERT_TRUE(run.trace.has_value());
  EXPECT_EQ(run.trace->ranks, 6u);
  EXPECT_EQ(run.trace->dropped, 0u);
  EXPECT_FALSE(run.trace->poisoned);
  EXPECT_FALSE(run.trace->events.empty());
}

TEST(Trace, PointToPointEventsAndOrdinals) {
  const JobTrace t = traced_job(2, [](comm::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/7, std::vector<double>{1.0, 2.0, 3.0});
      comm.send(1, /*tag=*/8, std::vector<double>{4.0});
    } else {
      auto a = comm.recv(0, 7);
      auto b = comm.recv(0, 8);
      ASSERT_EQ(a.size(), 3u);
      ASSERT_EQ(b.size(), 1u);
    }
  });
  ASSERT_EQ(t.events.size(), 4u);  // two messages, two endpoints each
  // Events are merged in (rank, ordinal) order.
  const TraceEvent& s0 = t.events[0];
  EXPECT_EQ(s0.rank, 0);
  EXPECT_EQ(s0.peer, 1);
  EXPECT_EQ(s0.dir, TraceDir::kSend);
  EXPECT_EQ(s0.kind, OpKind::kPointToPoint);
  EXPECT_EQ(s0.words, 3u);
  EXPECT_EQ(s0.ordinal, 0u);
  EXPECT_EQ(t.events[1].words, 1u);
  EXPECT_EQ(t.events[1].ordinal, 1u);
  const TraceEvent& r0 = t.events[2];
  EXPECT_EQ(r0.rank, 1);
  EXPECT_EQ(r0.peer, 0);
  EXPECT_EQ(r0.dir, TraceDir::kRecv);
  EXPECT_EQ(r0.words, 3u);
  EXPECT_EQ(r0.ordinal, 0u);
}

TEST(Trace, CollectiveKindOutermostWins) {
  // all_reduce is composed of reduce_scatter + all_gather internally; every
  // traced message must still carry the outermost kind.
  const JobTrace t = traced_job(4, [](comm::Comm& comm) {
    auto sum = comm.all_reduce(std::vector<double>(8, 1.0));
    ASSERT_EQ(sum.size(), 8u);
  });
  ASSERT_FALSE(t.events.empty());
  for (const TraceEvent& e : t.events) {
    EXPECT_EQ(e.kind, OpKind::kAllReduce) << op_kind_name(e.kind);
  }

  const JobTrace g = traced_job(4, [](comm::Comm& comm) {
    auto all = comm.all_gather(std::vector<double>{1.0});
    ASSERT_EQ(all.size(), 4u);
  });
  for (const TraceEvent& e : g.events) EXPECT_EQ(e.kind, OpKind::kAllGather);
}

TEST(Trace, PhaseAttributionIsCanonical) {
  const JobTrace t = traced_job(4, [](comm::Comm& comm) {
    comm.set_phase("zeta");
    comm.all_gather(std::vector<double>{1.0});
    comm.set_phase("alpha");
    comm.all_gather(std::vector<double>{2.0});
  });
  // The phase table is sorted regardless of interning order.
  ASSERT_EQ(t.phases, (std::vector<std::string>{"alpha", "zeta"}));
  std::size_t in_alpha = 0, in_zeta = 0;
  for (const TraceEvent& e : t.events) {
    if (t.phase_name(e) == "alpha") ++in_alpha;
    if (t.phase_name(e) == "zeta") ++in_zeta;
  }
  EXPECT_EQ(in_alpha, in_zeta);
  EXPECT_EQ(in_alpha + in_zeta, t.events.size());
}

TEST(Trace, RollupMatchesLedger) {
  comm::World world(6);
  world.enable_tracing();
  const auto before = world.ledger().snapshot();
  world.run([](comm::Comm& comm) {
    comm.set_phase("gather");
    comm.all_gather(std::vector<double>(4, 1.0));
    comm.set_phase("reduce");
    comm.reduce_scatter_equal(std::vector<double>(12, 1.0));
  });
  const JobTrace t = world.trace_sink()->drain(false);
  const trace::Rollup roll(t);
  EXPECT_TRUE(roll.matches(world.ledger().per_rank_since(before)));
  const comm::CostSummary ledger = world.ledger().summary_since(before);
  EXPECT_EQ(roll.summary().total, ledger.total);
  EXPECT_EQ(roll.summary().max, ledger.max);
  const comm::CostSummary gather = world.ledger().summary_since(before, "gather");
  EXPECT_EQ(roll.summary("gather").total, gather.total);
}

TEST(Trace, RollupDetectsTampering) {
  JobTrace t = traced_job(4, [](comm::Comm& comm) {
    comm.all_gather(std::vector<double>(4, 1.0));
  });
  comm::World world(4);
  const auto before = world.ledger().snapshot();
  world.run([](comm::Comm& comm) {
    comm.all_gather(std::vector<double>(4, 1.0));
  });
  const auto per_rank = world.ledger().per_rank_since(before);
  EXPECT_TRUE(trace::Rollup(t).matches(per_rank));
  t.events.front().words += 1;
  EXPECT_FALSE(trace::Rollup(t).matches(per_rank));
}

TEST(Trace, OverflowDropsAndCounts) {
  // Ring capacity 4 per rank; each of the 2 ranks records 16 endpoints.
  const JobTrace t = traced_job(
      2,
      [](comm::Comm& comm) {
        for (int i = 0; i < 16; ++i) {
          if (comm.rank() == 0) {
            comm.send(1, i, std::vector<double>{1.0});
          } else {
            comm.recv(0, i);
          }
        }
      },
      /*capacity=*/4);
  EXPECT_GT(t.dropped, 0u);
  EXPECT_EQ(t.events.size() + t.dropped, 32u);
  // A fresh job epoch clears the drop accounting.
  const JobTrace clean = traced_job(2, [](comm::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<double>{1.0});
    } else {
      comm.recv(0, 0);
    }
  });
  EXPECT_EQ(clean.dropped, 0u);
}

TEST(Trace, SplitSetupTrafficIsNotTraced) {
  // Comm::split is ledger-muted (setup traffic); the trace must mute it the
  // same way or Rollup::matches could never hold.
  const JobTrace t = traced_job(4, [](comm::Comm& comm) {
    comm::Comm sub = comm.split(comm.rank() % 2, comm.rank());
    (void)sub;
  });
  EXPECT_TRUE(t.events.empty());
}

// ---- Chrome tracing JSON ----

/// Minimal JSON syntax checker (objects/arrays/strings/numbers/keywords),
/// enough to prove the exporter emits a well-formed document without
/// depending on a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Trace, ChromeJsonIsWellFormed) {
  const JobTrace t = traced_job(4, [](comm::Comm& comm) {
    comm.set_phase("gather\"quoted\\phase");  // must be escaped in JSON
    comm.all_gather(std::vector<double>(3, 1.0));
  });
  const std::string doc = trace::to_chrome_json(t);
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("thread_name"), std::string::npos);
}

TEST(Trace, ChromeJsonEmptyTrace) {
  JobTrace t;
  t.ranks = 2;
  const std::string doc = trace::to_chrome_json(t);
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
}

// ---- Binary golden format ----

TEST(Trace, BinaryRoundTrip) {
  const JobTrace t = traced_job(6, [](comm::Comm& comm) {
    comm.set_phase("gather_A");
    comm.all_gather(std::vector<double>(4, 1.0));
    comm.set_phase("reduce_C");
    comm.reduce_scatter_equal(std::vector<double>(12, 1.0));
  });
  const std::string bytes = trace::to_binary(t);
  const JobTrace back = trace::from_binary(bytes);
  EXPECT_EQ(back.ranks, t.ranks);
  EXPECT_EQ(back.poisoned, t.poisoned);
  EXPECT_EQ(back.dropped, t.dropped);
  EXPECT_EQ(back.phases, t.phases);
  EXPECT_EQ(back.events, t.events);
  // The job id is deliberately not serialized (warm-vs-fresh comparability).
  EXPECT_EQ(back.job_id, 0u);
}

TEST(Trace, BinaryRejectsMalformedInput) {
  EXPECT_THROW(trace::from_binary(""), InvalidArgument);
  EXPECT_THROW(trace::from_binary("not a trace at all......."),
               InvalidArgument);
  const JobTrace t = traced_job(2, [](comm::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<double>{1.0});
    } else {
      comm.recv(0, 0);
    }
  });
  std::string bytes = trace::to_binary(t);
  EXPECT_THROW(trace::from_binary(bytes.substr(0, bytes.size() - 3)),
               InvalidArgument);
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_THROW(trace::from_binary(wrong_magic), InvalidArgument);
}

TEST(Trace, WarmWorldJobsReplayIdentically) {
  // Ordinals, phases, and tags all reset per job, so the Nth traced job on
  // a warm world serializes to exactly the bytes of the first.
  comm::WorkerPool pool;
  comm::World world(4, pool);
  world.enable_tracing();
  auto body = [](comm::Comm& comm) {
    comm.set_phase("work");
    comm.all_gather(std::vector<double>(2, 1.0 * comm.rank()));
  };
  world.run(body);
  const JobTrace first = world.trace_sink()->drain(false);
  for (int j = 0; j < 3; ++j) world.run(body);
  const JobTrace last = world.trace_sink()->drain(false);
  EXPECT_EQ(first.job_id, 1u);
  EXPECT_EQ(last.job_id, 4u);  // only the latest job survives begin_job
  EXPECT_EQ(trace::to_binary(first), trace::to_binary(last));
}

TEST(Trace, EnableTracingIsIdempotent) {
  comm::World world(2);
  world.enable_tracing();
  comm::TraceSink* sink = world.trace_sink();
  world.enable_tracing();  // keeps the existing sink
  EXPECT_EQ(world.trace_sink(), sink);
  world.disable_tracing();
  EXPECT_FALSE(world.tracing());
}

}  // namespace
}  // namespace parsyrk
