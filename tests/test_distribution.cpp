// Tests for src/distribution: the triangle-block distribution against the
// paper's Table 1 (c = 3, P = 12), structural validity for a sweep of
// primes, and the 1D partition helpers.
#include <gtest/gtest.h>

#include <set>

#include "distribution/block1d.hpp"
#include "distribution/render.hpp"
#include "distribution/triangle_block.hpp"
#include "support/check.hpp"

namespace parsyrk::dist {
namespace {

using U64Vec = std::vector<std::uint64_t>;

TEST(Block1D, EvenChunks) {
  EXPECT_EQ(chunk_begin(10, 2, 0), 0u);
  EXPECT_EQ(chunk_begin(10, 2, 1), 5u);
  EXPECT_EQ(chunk_end(10, 2, 1), 10u);
  EXPECT_EQ(chunk_size(10, 2, 0), 5u);
}

TEST(Block1D, UnevenChunksDifferByAtMostOne) {
  const std::size_t n = 17;
  const int p = 5;
  std::size_t total = 0, mn = n, mx = 0;
  for (int r = 0; r < p; ++r) {
    const auto s = chunk_size(n, p, r);
    total += s;
    mn = std::min(mn, s);
    mx = std::max(mx, s);
  }
  EXPECT_EQ(total, n);
  EXPECT_LE(mx - mn, 1u);
}

TEST(Block1D, OwnerInverse) {
  const std::size_t n = 29;
  const int p = 7;
  for (std::size_t i = 0; i < n; ++i) {
    const int r = chunk_owner(n, p, i);
    EXPECT_LE(chunk_begin(n, p, r), i);
    EXPECT_LT(i, chunk_end(n, p, r));
  }
}

TEST(Block1D, MorePartsThanItems) {
  const std::size_t n = 3;
  const int p = 8;
  std::size_t total = 0;
  for (int r = 0; r < p; ++r) total += chunk_size(n, p, r);
  EXPECT_EQ(total, n);
}

// ---------------------------------------------------------------------------
// Paper Table 1 (c = 3, P = 12), cell for cell.
// ---------------------------------------------------------------------------

TEST(TriangleBlock, Table1RowBlockSets) {
  TriangleBlockDistribution d(3);
  const std::vector<U64Vec> expected_r = {
      {0, 3, 6}, {0, 4, 7}, {0, 5, 8}, {1, 3, 7}, {1, 4, 8}, {1, 5, 6},
      {2, 3, 8}, {2, 4, 6}, {2, 5, 7}, {0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  ASSERT_EQ(d.num_procs(), 12u);
  for (std::uint64_t k = 0; k < 12; ++k) {
    EXPECT_EQ(d.row_block_set(k), expected_r[k]) << "R_" << k;
  }
}

TEST(TriangleBlock, Table1DiagonalSets) {
  TriangleBlockDistribution d(3);
  const std::vector<std::optional<std::uint64_t>> expected_d = {
      std::nullopt, std::nullopt, std::nullopt, 1, 4, 5, 2, 6, 7, 0, 3, 8};
  for (std::uint64_t k = 0; k < 12; ++k) {
    EXPECT_EQ(d.diagonal_block(k), expected_d[k]) << "D_" << k;
  }
}

TEST(TriangleBlock, Table1ProcessorSets) {
  TriangleBlockDistribution d(3);
  const std::vector<U64Vec> expected_q = {
      {0, 1, 2, 9}, {3, 4, 5, 9}, {6, 7, 8, 9},
      {0, 3, 6, 10}, {1, 4, 7, 10}, {2, 5, 8, 10},
      {0, 5, 7, 11}, {1, 3, 8, 11}, {2, 4, 6, 11}};
  ASSERT_EQ(d.num_block_rows(), 9u);
  for (std::uint64_t i = 0; i < 9; ++i) {
    EXPECT_EQ(d.processor_set(i), expected_q[i]) << "Q_" << i;
  }
}

TEST(TriangleBlock, PaperExampleOwnership) {
  // §5.2.1: "R_3 = {1,3,7} and processor 3 is assigned blocks C31, C71, C73";
  // "D_7 = {6}, ... the processor of rank 7 owns the block (6,2)".
  TriangleBlockDistribution d(3);
  EXPECT_EQ(d.owner_off_diagonal(3, 1), 3u);
  EXPECT_EQ(d.owner_off_diagonal(7, 1), 3u);
  EXPECT_EQ(d.owner_off_diagonal(7, 3), 3u);
  EXPECT_EQ(d.owner_diagonal(6), 7u);
  EXPECT_EQ(d.owner_off_diagonal(6, 2), 7u);
}

TEST(TriangleBlock, HelperFunctionFormulas) {
  // Hand-computed values of f_k(u) (eq. (4)) and h_i(q) (eq. (7)) for c = 3.
  TriangleBlockDistribution d(3);
  EXPECT_EQ(d.f(3, 1), 3u);
  EXPECT_EQ(d.f(3, 2), 7u);
  EXPECT_EQ(d.f(8, 1), 5u);
  EXPECT_EQ(d.f(8, 2), 7u);
  EXPECT_EQ(d.f(0, 0), 0u);  // exercises the (u-1) < 0 branch
  EXPECT_EQ(d.h(6, 0), 0u);
  EXPECT_EQ(d.h(6, 1), 5u);
  EXPECT_EQ(d.h(6, 2), 7u);
  EXPECT_EQ(d.h(3, 1), 3u);
}

// ---------------------------------------------------------------------------
// Structural validity across primes (the paper's claim: prime c suffices).
// ---------------------------------------------------------------------------

class TrianglePrimes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrianglePrimes, Validates) {
  TriangleBlockDistribution d(GetParam());
  std::string why;
  EXPECT_TRUE(d.validate(&why)) << why;
}

TEST_P(TrianglePrimes, EveryOffDiagonalBlockCoveredExactlyOnce) {
  TriangleBlockDistribution d(GetParam());
  const std::uint64_t nb = d.num_block_rows();
  std::size_t covered = 0;
  for (std::uint64_t k = 0; k < d.num_procs(); ++k) {
    covered += d.owned_pairs(k).size();
  }
  EXPECT_EQ(covered, nb * (nb - 1) / 2);
}

TEST_P(TrianglePrimes, QiConsistentWithRk) {
  TriangleBlockDistribution d(GetParam());
  for (std::uint64_t i = 0; i < d.num_block_rows(); ++i) {
    const auto& q = d.processor_set(i);
    EXPECT_EQ(q.size(), d.c() + 1);
    for (std::uint64_t k : q) {
      const auto& r = d.row_block_set(k);
      EXPECT_TRUE(std::binary_search(r.begin(), r.end(), i))
          << "k=" << k << " i=" << i;
    }
  }
}

TEST_P(TrianglePrimes, DiagonalAssignmentBalanced) {
  // |D_k| <= 1 everywhere, exactly c processors own none, and every
  // diagonal block has exactly one owner.
  TriangleBlockDistribution d(GetParam());
  std::uint64_t without = 0;
  std::set<std::uint64_t> owned;
  for (std::uint64_t k = 0; k < d.num_procs(); ++k) {
    const auto dk = d.diagonal_block(k);
    if (!dk) {
      ++without;
      continue;
    }
    EXPECT_TRUE(owned.insert(*dk).second) << "diag " << *dk << " owned twice";
  }
  EXPECT_EQ(without, d.c());
  EXPECT_EQ(owned.size(), d.num_block_rows());
}

TEST_P(TrianglePrimes, PairsOfProcessorsShareAtMostOneBlock) {
  TriangleBlockDistribution d(GetParam());
  const std::uint64_t p = d.num_procs();
  for (std::uint64_t k = 0; k < p; ++k) {
    for (std::uint64_t k2 = 0; k2 < k; ++k2) {
      d.shared_block(k, k2);  // internal check aborts if > 1 shared
    }
  }
  SUCCEED();
}

TEST_P(TrianglePrimes, OwnerMapsInvertRSets) {
  TriangleBlockDistribution d(GetParam());
  for (std::uint64_t k = 0; k < d.num_procs(); ++k) {
    for (const auto& [i, j] : d.owned_pairs(k)) {
      EXPECT_EQ(d.owner_off_diagonal(i, j), k);
    }
    if (auto di = d.diagonal_block(k)) {
      EXPECT_EQ(d.owner_diagonal(*di), k);
    }
  }
}

TEST_P(TrianglePrimes, ChunkIndexIsPositionInQi) {
  TriangleBlockDistribution d(GetParam());
  for (std::uint64_t i = 0; i < d.num_block_rows(); ++i) {
    const auto& q = d.processor_set(i);
    for (std::size_t pos = 0; pos < q.size(); ++pos) {
      EXPECT_EQ(d.chunk_index(i, q[pos]), pos);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Primes, TrianglePrimes,
                         ::testing::Values(2, 3, 5, 7, 11, 13));

TEST(TriangleBlock, LargerPrimesValidate) {
  // The paper's sufficiency claim, pushed further out: c = 17, 19, 23
  // (P up to 552) still produce valid partitions.
  for (std::uint64_t c : {17, 19, 23}) {
    TriangleBlockDistribution d(c);
    std::string why;
    EXPECT_TRUE(d.validate(&why)) << "c = " << c << ": " << why;
  }
}

TEST(TriangleBlock, OffDiagonalLoadIsUniform) {
  // Every processor owns exactly c(c-1)/2 off-diagonal blocks — perfect
  // balance of the dominant work.
  for (std::uint64_t c : {3, 7, 13}) {
    TriangleBlockDistribution d(c);
    for (std::uint64_t k = 0; k < d.num_procs(); ++k) {
      EXPECT_EQ(d.owned_pairs(k).size(), c * (c - 1) / 2) << "c=" << c;
    }
  }
}

TEST(TriangleBlock, SharedBlockSymmetricAndSelfConsistent) {
  TriangleBlockDistribution d(5);
  for (std::uint64_t k = 0; k < d.num_procs(); ++k) {
    for (std::uint64_t k2 = 0; k2 < k; ++k2) {
      const auto ab = d.shared_block(k, k2);
      const auto ba = d.shared_block(k2, k);
      EXPECT_EQ(ab, ba);
      if (ab) {
        const auto& q = d.processor_set(*ab);
        EXPECT_TRUE(std::binary_search(q.begin(), q.end(), k));
        EXPECT_TRUE(std::binary_search(q.begin(), q.end(), k2));
      }
    }
  }
}

TEST(TriangleBlock, PairsOfProcessorsWithNoSharedBlockAreRare) {
  // Exactly those pairs within the same "last-c" family or first-c²
  // structure — the count of non-communicating pairs is P(P−1)/2 minus
  // c²·C(c+1,2) covered pairs (each Q_i yields C(c+1,2) pairs, disjoint).
  TriangleBlockDistribution d(3);
  const std::uint64_t p = d.num_procs();
  std::size_t communicating = 0;
  for (std::uint64_t k = 0; k < p; ++k) {
    for (std::uint64_t k2 = 0; k2 < k; ++k2) {
      if (d.shared_block(k, k2)) ++communicating;
    }
  }
  EXPECT_EQ(communicating, d.num_block_rows() * 4 * 3 / 2);  // 9·C(4,2)
}

TEST(TriangleBlock, RejectsNonPrimeC) {
  EXPECT_THROW(TriangleBlockDistribution(4), InvalidArgument);
  EXPECT_THROW(TriangleBlockDistribution(1), InvalidArgument);
  EXPECT_THROW(TriangleBlockDistribution(9), InvalidArgument);
}

TEST(Render, Fig2ContainsAllProcessors) {
  TriangleBlockDistribution d(3);
  const std::string c_map = render_c_ownership(d);
  // Every processor rank must appear as an owner somewhere.
  for (int k = 0; k < 12; ++k) {
    EXPECT_NE(c_map.find(std::to_string(k)), std::string::npos) << k;
  }
  const std::string a_map = render_a_ownership(d);
  EXPECT_NE(a_map.find("A_0"), std::string::npos);
  EXPECT_NE(a_map.find("A_8"), std::string::npos);
}

TEST(Render, Fig3MentionsGridShape) {
  TriangleBlockDistribution d(2);
  const std::string s = render_3d_layout(d, 3);
  EXPECT_NE(s.find("p1 = 6"), std::string::npos);
  EXPECT_NE(s.find("p2 = 3"), std::string::npos);
}

}  // namespace
}  // namespace parsyrk::dist
