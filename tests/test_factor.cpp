// Tests for src/matrix/factor: Cholesky, triangular solves, and the Jacobi
// symmetric eigensolver.
#include <gtest/gtest.h>

#include <cmath>

#include "matrix/factor.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/check.hpp"

namespace parsyrk {
namespace {

/// A well-conditioned SPD matrix: A·Aᵀ + n·I.
Matrix spd_matrix(std::size_t n, std::uint64_t seed) {
  Matrix g = syrk_reference(random_matrix(n, n + 2, seed).view());
  for (std::size_t i = 0; i < n; ++i) g(i, i) += static_cast<double>(n);
  return g;
}

TEST(Cholesky, ReconstructsInput) {
  Matrix g = spd_matrix(12, 701);
  Matrix l = cholesky_lower(g.view());
  Matrix recon(12, 12);
  gemm_nt(l.view(), l.view(), recon.view());  // L·Lᵀ
  EXPECT_LT(max_abs_diff(recon.view(), g.view()), 1e-10);
}

TEST(Cholesky, FactorIsLowerTriangular) {
  Matrix l = cholesky_lower(spd_matrix(9, 702).view());
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = i + 1; j < 9; ++j) {
      EXPECT_DOUBLE_EQ(l(i, j), 0.0);
    }
  }
}

TEST(Cholesky, KnownFactor) {
  auto g = Matrix::from_rows({{4, 2}, {2, 5}});
  Matrix l = cholesky_lower(g.view());
  EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(l(1, 1), 2.0);
}

TEST(Cholesky, RejectsIndefinite) {
  auto g = Matrix::from_rows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_THROW(cholesky_lower(g.view()), InvalidArgument);
}

TEST(Cholesky, SolveRoundTrip) {
  const std::size_t n = 10;
  Matrix g = spd_matrix(n, 703);
  Matrix l = cholesky_lower(g.view());
  Rng rng(704);
  std::vector<double> x_true(n);
  for (auto& x : x_true) x = rng.uniform(-2, 2);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += g(i, j) * x_true[j];
  }
  auto x = cholesky_solve(l.view(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(TriangularSolve, ForwardAndBackward) {
  auto l = Matrix::from_rows({{2, 0}, {1, 3}});
  std::vector<double> b = {4, 7};
  solve_lower(l.view(), b);  // y = (2, 5/3)
  EXPECT_DOUBLE_EQ(b[0], 2.0);
  EXPECT_DOUBLE_EQ(b[1], 5.0 / 3.0);
  std::vector<double> c = {2, 3};  // solve Lᵀ x = c
  solve_lower_transposed(l.view(), c);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(c[0], 0.5);
}

TEST(Jacobi, DiagonalMatrixIsItsOwnDecomposition) {
  auto s = Matrix::from_rows({{3, 0, 0}, {0, 7, 0}, {0, 0, 1}});
  auto e = jacobi_eigen_symmetric(s.view());
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_DOUBLE_EQ(e.values[0], 7.0);
  EXPECT_DOUBLE_EQ(e.values[1], 3.0);
  EXPECT_DOUBLE_EQ(e.values[2], 1.0);
}

TEST(Jacobi, KnownEigenvalues) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  auto s = Matrix::from_rows({{2, 1}, {1, 2}});
  auto e = jacobi_eigen_symmetric(s.view());
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
}

TEST(Jacobi, ReconstructsSpdMatrix) {
  const std::size_t n = 14;
  Matrix s = spd_matrix(n, 705);
  auto e = jacobi_eigen_symmetric(s.view());
  // V·diag(λ)·Vᵀ == S.
  Matrix vl(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      vl(i, j) = e.vectors(i, j) * e.values[j];
    }
  }
  Matrix recon(n, n);
  gemm_nt(vl.view(), e.vectors.view(), recon.view());
  EXPECT_LT(max_abs_diff(recon.view(), s.view()), 1e-8);
}

TEST(Jacobi, VectorsOrthonormal) {
  Matrix s = spd_matrix(11, 706);
  auto e = jacobi_eigen_symmetric(s.view());
  Matrix vt = transpose(e.vectors.view());
  Matrix vtv = syrk_reference(vt.view());
  for (std::size_t i = 0; i < 11; ++i) {
    for (std::size_t j = 0; j < 11; ++j) {
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Jacobi, HandlesNegativeEigenvalues) {
  auto s = Matrix::from_rows({{0, 2}, {2, 0}});  // eigenvalues 2, -2
  auto e = jacobi_eigen_symmetric(s.view());
  EXPECT_NEAR(e.values[0], 2.0, 1e-12);
  EXPECT_NEAR(e.values[1], -2.0, 1e-12);
}

TEST(Jacobi, TraceAndDeterminantPreserved) {
  Matrix s = spd_matrix(8, 707);
  auto e = jacobi_eigen_symmetric(s.view());
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    trace += s(i, i);
    sum += e.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(Jacobi, ReadsOnlyLowerTriangle) {
  Matrix s = spd_matrix(6, 708);
  Matrix garbage = s;
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) garbage(i, j) = -123.0;
  }
  auto clean = jacobi_eigen_symmetric(s.view());
  auto dirty = jacobi_eigen_symmetric(garbage.view());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(clean.values[i], dirty.values[i], 1e-12);
  }
}

}  // namespace
}  // namespace parsyrk
