// Service-layer tests: plan_round packing policy, PlanCache hit/miss and
// invalidation semantics, and SyrkService end-to-end — ticket lifecycle,
// FIFO fairness, batch-vs-solo bitwise equivalence, poisoned-round retry,
// and a multithreaded submitter stress (the tsan preset runs this suite).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "service/plan_cache.hpp"
#include "service/scheduler.hpp"
#include "service/service.hpp"
#include "support/check.hpp"

namespace parsyrk {
namespace {

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (std::memcmp(x.data() + i * x.ld(), y.data() + i * y.ld(),
                    x.cols() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

service::JobSpec spec(std::uint64_t ranks, double modeled = 1e-6,
                      bool solo = false) {
  service::JobSpec s;
  s.ranks = ranks;
  s.modeled_seconds = modeled;
  s.solo = solo;
  return s;
}

// ---- plan_round: the pure packing policy ----

TEST(PlanRound, PacksFifoPrefixUntilRanksRunOut) {
  const std::vector<service::JobSpec> q = {spec(4), spec(4), spec(4),
                                           spec(6), spec(2)};
  const auto round = service::plan_round(q, 12, {});
  // Strict FIFO: job 3 (6 ranks) does not fit after 4+4+4; job 4 would,
  // but skipping ahead is exactly what the policy forbids.
  ASSERT_EQ(round.placements.size(), 3u);
  EXPECT_EQ(round.placements[0].job, 0u);
  EXPECT_EQ(round.placements[0].base_rank, 0);
  EXPECT_EQ(round.placements[1].base_rank, 4);
  EXPECT_EQ(round.placements[2].base_rank, 8);
}

TEST(PlanRound, HeadIsAlwaysPlacedEvenOverBudget) {
  service::AdmissionLimits limits;
  limits.modeled_seconds_per_round = 1e-9;
  const std::vector<service::JobSpec> q = {spec(4, 1.0), spec(2, 1e-12)};
  const auto round = service::plan_round(q, 12, limits);
  // The over-budget head is exempt (it must run eventually and blocking it
  // forever would deadlock) AND it does not consume the round budget: the
  // tiny follower fits on the leftover ranks instead of stalling behind it.
  ASSERT_EQ(round.placements.size(), 2u);
  EXPECT_EQ(round.placements[0].job, 0u);
  EXPECT_EQ(round.placements[1].job, 1u);
  EXPECT_EQ(round.placements[1].base_rank, 4);
  // modeled_sum_seconds still reports the true in-flight cost.
  EXPECT_DOUBLE_EQ(round.modeled_sum_seconds, 1.0 + 1e-12);

  // A follower that itself exceeds the budget still breaks the round: the
  // exemption is for the head only.
  const std::vector<service::JobSpec> q2 = {spec(4, 1.0), spec(2, 1.0)};
  ASSERT_EQ(service::plan_round(q2, 12, limits).placements.size(), 1u);
}

TEST(PlanRound, BudgetStopsPacking) {
  service::AdmissionLimits limits;
  limits.modeled_seconds_per_round = 0.05;
  const std::vector<service::JobSpec> q = {spec(2, 0.03), spec(2, 0.03),
                                           spec(2, 0.03)};
  const auto round = service::plan_round(q, 12, limits);
  EXPECT_EQ(round.placements.size(), 1u);
  EXPECT_DOUBLE_EQ(round.modeled_sum_seconds, 0.03);
}

TEST(PlanRound, SoloJobsNeverShareARound) {
  const std::vector<service::JobSpec> q1 = {spec(2), spec(4, 1e-6, true)};
  EXPECT_EQ(service::plan_round(q1, 12, {}).placements.size(), 1u);
  // A solo head runs alone even though the next job would fit.
  const std::vector<service::JobSpec> q2 = {spec(4, 1e-6, true), spec(2)};
  EXPECT_EQ(service::plan_round(q2, 12, {}).placements.size(), 1u);
}

TEST(PlanRound, JobCapBoundsRound) {
  service::AdmissionLimits limits;
  limits.max_jobs_per_round = 2;
  const std::vector<service::JobSpec> q = {spec(2), spec(2), spec(2)};
  EXPECT_EQ(service::plan_round(q, 12, limits).placements.size(), 2u);
}

// ---- PlanCache ----

TEST(PlanCache, MissesCountEnumeratorRunsHitsShareReports) {
  service::PlanCache cache;
  core::PlanSearchOptions opts;
  const auto r1 = cache.resolve(48, 96, 6, opts);
  const auto r2 = cache.resolve(48, 96, 6, opts);
  EXPECT_EQ(r1.get(), r2.get());  // shared immutable report
  const auto s1 = cache.stats();
  EXPECT_EQ(s1.misses, 1u);
  EXPECT_EQ(s1.hits, 1u);
  EXPECT_EQ(s1.entries, 1u);

  cache.resolve(48, 96, 12, opts);  // different cap: different key
  opts.allow_folding = false;
  cache.resolve(48, 96, 6, opts);  // different options: different key
  const auto s2 = cache.stats();
  EXPECT_EQ(s2.misses, 3u);
  EXPECT_EQ(s2.entries, 3u);
}

TEST(PlanCache, RebindingWorkerCountInvalidates) {
  service::PlanCache cache;
  core::PlanSearchOptions opts;
  cache.bind_worker_count(12);  // first bind: no invalidation
  cache.resolve(48, 96, 6, opts);
  cache.bind_worker_count(12);  // same count: entries survive
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_EQ(cache.stats().entries, 1u);

  cache.bind_worker_count(8);  // resize: stale fold factors dropped
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  cache.resolve(48, 96, 6, opts);
  EXPECT_EQ(cache.stats().misses, 2u);  // re-enumerated after the drop
}

// ---- SyrkService end-to-end ----

service::ServiceOptions packable_options(int procs) {
  service::ServiceOptions opts;
  opts.procs = procs;
  // Folded plans are solo-only; disabling folding keeps every job in this
  // suite's workloads packable.
  opts.plan_options.allow_folding = false;
  return opts;
}

TEST(SyrkService, TicketLifecycleAndBlockingSyrkAgree) {
  service::SyrkService svc(packable_options(12));
  Matrix a = random_matrix(32, 64, 7);

  auto ticket = svc.submit(core::SyrkRequest(a).on_procs(4));
  ASSERT_TRUE(ticket.valid());
  const service::SyrkResult& res = ticket.wait();
  EXPECT_EQ(ticket.status(), service::TicketStatus::kDone);
  ASSERT_NE(ticket.try_get(), nullptr);  // idempotent after wait
  EXPECT_EQ(ticket.try_get(), &res);
  EXPECT_GT(res.completion_seq, 0u);
  EXPECT_GE(res.latency.total_seconds, res.latency.service_seconds);
  EXPECT_GT(res.latency.modeled_seconds, 0.0);

  // Blocking use is submit+wait: same plan, bitwise-identical result.
  const service::SyrkResult blocking =
      svc.syrk(core::SyrkRequest(a).on_procs(4));
  EXPECT_EQ(blocking.run.plan.algorithm, res.run.plan.algorithm);
  EXPECT_EQ(blocking.run.plan.procs, res.run.plan.procs);
  EXPECT_TRUE(bitwise_equal(blocking.run.c, res.run.c));
  EXPECT_LT(max_abs_diff(res.run.c.view(), syrk_reference(a.view()).view()),
            1e-9);

  EXPECT_FALSE(service::SyrkTicket().valid());
}

TEST(SyrkService, InvalidRequestFailsAtWait) {
  service::SyrkService svc(packable_options(12));
  Matrix a = random_matrix(30, 8, 3);
  // use_2d(5) needs 30 ranks; the 12-rank service rejects it at admission.
  auto ticket = svc.submit(core::SyrkRequest(a).use_2d(5));
  EXPECT_THROW(ticket.wait(), InvalidArgument);
  EXPECT_EQ(ticket.status(), service::TicketStatus::kFailed);
  EXPECT_THROW(ticket.try_get(), InvalidArgument);
  svc.drain();
  EXPECT_EQ(svc.stats().failed, 1u);

  // The service stays healthy for later requests.
  const auto ok = svc.syrk(core::SyrkRequest(a).on_procs(3));
  EXPECT_LT(max_abs_diff(ok.run.c.view(), syrk_reference(a.view()).view()),
            1e-9);
}

TEST(SyrkService, CacheCountsOneMissPerDistinctShape) {
  service::SyrkService svc(packable_options(12));
  const std::uint64_t shapes[][3] = {{16, 64, 2}, {24, 96, 3}, {32, 64, 4}};
  const int repeats = 4;
  std::vector<Matrix> inputs;
  inputs.reserve(3 * repeats);
  std::vector<service::SyrkTicket> tickets;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& s : shapes) {
      inputs.push_back(random_matrix(s[0], s[1], s[0] + s[1]));
      tickets.push_back(
          svc.submit(core::SyrkRequest(inputs.back()).on_procs(s[2])));
    }
  }
  for (auto& t : tickets) t.wait();
  const auto st = svc.stats();
  // Misses == enumerator runs == distinct (shape, cap) keys; every repeat
  // (and each solo re-resolve, if any) lands in the cache.
  EXPECT_EQ(st.plan_cache.misses, 3u);
  EXPECT_GE(st.plan_cache.hits,
            static_cast<std::uint64_t>(3 * repeats - 3));
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(3 * repeats));
}

TEST(SyrkService, ResizeInvalidatesCachedPlans) {
  service::ServiceOptions opts;
  opts.procs = 12;  // default options: folding allowed, like production use
  service::SyrkService svc(opts);
  Matrix a = random_matrix(48, 96, 11);
  svc.syrk(core::SyrkRequest(a));  // planner path at cap 12
  EXPECT_EQ(svc.plan_cache().stats().entries, 1u);

  svc.resize(6);
  EXPECT_EQ(svc.procs(), 6);
  const auto after = svc.plan_cache().stats();
  EXPECT_GE(after.invalidations, 1u);
  EXPECT_EQ(after.entries, 0u);

  // Same request re-plans against the new worker count: fresh enumeration,
  // and the chosen plan must fit the smaller session.
  const auto rerun = svc.syrk(core::SyrkRequest(a));
  EXPECT_LE(rerun.run.plan.procs, 6u);
  EXPECT_GE(svc.plan_cache().stats().misses, 2u);
  EXPECT_LT(max_abs_diff(rerun.run.c.view(), syrk_reference(a.view()).view()),
            1e-9);
}

TEST(SyrkService, CompletionOrderIsFifoAcrossMixedSizes) {
  // Global completion-order FIFO is a rounds-mode guarantee; the streaming
  // scheduler keeps dispatch FIFO but lets short jobs finish ahead of
  // stragglers (test_scheduler_stream covers that mode).
  auto opts = packable_options(12);
  opts.scheduler = service::SchedMode::kRounds;
  service::SyrkService svc(opts);
  const std::uint64_t caps[] = {2, 12, 3, 6, 4, 2, 12, 3};
  const int jobs = 24;
  std::vector<Matrix> inputs;
  inputs.reserve(jobs);
  std::vector<service::SyrkTicket> tickets;
  for (int j = 0; j < jobs; ++j) {
    inputs.push_back(random_matrix(24, 48, 100 + static_cast<unsigned>(j)));
    tickets.push_back(svc.submit(
        core::SyrkRequest(inputs.back()).on_procs(caps[j % 8])));
  }
  // Full-size jobs interleaved with packable ones must not be overtaken:
  // completion sequence == submission order, ticket by ticket.
  for (int j = 0; j < jobs; ++j) {
    EXPECT_EQ(tickets[j].wait().completion_seq,
              static_cast<std::uint64_t>(j + 1));
  }
}

TEST(SyrkService, BatchedJobsMatchSoloRunsBitwise) {
  service::SyrkService svc(packable_options(12));
  const std::uint64_t caps[] = {2, 3, 4, 3};
  std::vector<Matrix> inputs;
  inputs.reserve(4);
  std::vector<service::SyrkTicket> tickets;
  for (int j = 0; j < 4; ++j) {
    inputs.push_back(random_matrix(24, 48, 40 + static_cast<unsigned>(j)));
    tickets.push_back(svc.submit(
        core::SyrkRequest(inputs[static_cast<std::size_t>(j)])
            .on_procs(caps[j])
            .with_trace()));
  }
  std::vector<service::SyrkResult> results;
  for (auto& t : tickets) results.push_back(t.wait());
  svc.drain();
  EXPECT_GE(svc.stats().batched_rounds, 1u);

  // Solo references on an equally sized session with the same options.
  core::Session solo(12);
  core::PlanSearchOptions plan_opts;
  plan_opts.allow_folding = false;
  solo.set_plan_options(plan_opts);
  bool any_batched = false;
  for (std::size_t j = 0; j < results.size(); ++j) {
    const auto ref = core::syrk(
        solo, core::SyrkRequest(inputs[j]).on_procs(caps[j]).with_trace());
    const auto& run = results[j].run;
    any_batched = any_batched || results[j].batched;
    EXPECT_TRUE(bitwise_equal(run.c, ref.c)) << "job " << j;
    // Per-job ledger scope: rank-range summaries of the shared round equal
    // the solo run's whole-world summaries, counter for counter.
    EXPECT_EQ(run.total.total, ref.total.total) << "job " << j;
    EXPECT_EQ(run.total.max, ref.total.max) << "job " << j;
    EXPECT_EQ(run.gather_a.total, ref.gather_a.total) << "job " << j;
    EXPECT_EQ(run.reduce_c.total, ref.reduce_c.total) << "job " << j;
    // Per-job trace: rank-range extraction rebased to the job's base rank
    // reproduces the solo event stream and phase table exactly.
    ASSERT_TRUE(run.trace.has_value());
    ASSERT_TRUE(ref.trace.has_value());
    EXPECT_EQ(run.trace->phases, ref.trace->phases) << "job " << j;
    EXPECT_EQ(run.trace->events, ref.trace->events) << "job " << j;
  }
  EXPECT_TRUE(any_batched);
}

TEST(SyrkService, PoisonedRoundRetriesInnocentJobsSolo) {
  service::SyrkService svc(packable_options(12));
  // 18 % 2² != 0: the 2D kernel rejects this inside the SPMD body, after
  // batching decisions are made — the whole round's world job is poisoned.
  Matrix bad_a = random_matrix(18, 8, 5);
  Matrix good_a = random_matrix(24, 48, 6);
  auto bad = svc.submit(core::SyrkRequest(bad_a).use_2d(2));
  auto good = svc.submit(core::SyrkRequest(good_a).on_procs(6));
  EXPECT_THROW(bad.wait(), InvalidArgument);
  const auto& ok = good.wait();
  EXPECT_LT(max_abs_diff(ok.run.c.view(),
                         syrk_reference(good_a.view()).view()),
            1e-9);
  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.failed, 1u);
  // Both round members were retried solo (where the guilty one failed for
  // real and the innocent one completed) — unless the scheduler happened to
  // run them in separate rounds, in which case no retry was needed.
  if (st.batched_rounds > 0) EXPECT_EQ(st.retried_jobs, 2u);

  // The session world recovered: later jobs run normally.
  const auto again = svc.syrk(core::SyrkRequest(good_a).on_procs(4));
  EXPECT_LT(max_abs_diff(again.run.c.view(),
                         syrk_reference(good_a.view()).view()),
            1e-9);
}

TEST(SyrkService, MultithreadedSubmittersAllComplete) {
  service::SyrkService svc(packable_options(12));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  const std::uint64_t caps[kThreads] = {2, 3, 4, 6};

  std::vector<std::vector<Matrix>> inputs(kThreads);
  std::vector<double> max_err(kThreads, 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    inputs[t].reserve(kPerThread);
    threads.emplace_back([&, t] {
      std::vector<service::SyrkTicket> tickets;
      for (int j = 0; j < kPerThread; ++j) {
        inputs[t].push_back(random_matrix(
            16 + 8 * static_cast<std::size_t>(t), 32,
            static_cast<std::uint64_t>(t * 100 + j)));
        tickets.push_back(svc.submit(
            core::SyrkRequest(inputs[t].back()).on_procs(caps[t])));
      }
      for (int j = 0; j < kPerThread; ++j) {
        const auto& res = tickets[static_cast<std::size_t>(j)].wait();
        max_err[t] = std::max(
            max_err[t],
            max_abs_diff(res.run.c.view(),
                         syrk_reference(
                             inputs[t][static_cast<std::size_t>(j)].view())
                             .view()));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_LT(max_err[t], 1e-9);
  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(st.failed, 0u);
}

// ---------------------------------------------------------------------------
// Pipelined jobs through the service (overlap stress + poisoned rounds)
// ---------------------------------------------------------------------------

TEST(SyrkService, PipelinedJobsOverlapStressMatchesSoloBitwise) {
  // Concurrent submitters flood the service with with_pipeline jobs at
  // mixed chunk counts; batched rounds execute their chunked collectives
  // with overlap. Every result must still be bitwise-identical to the same
  // request run solo, and the ledger scoping must survive the in-flight
  // chunk traffic (the eager-posting attribution rule).
  service::SyrkService svc(packable_options(12));
  constexpr int kThreads = 3;
  constexpr int kPerThread = 6;
  const std::uint64_t caps[kThreads] = {2, 4, 6};
  const int chunk_counts[kThreads] = {2, 3, 5};

  std::vector<std::vector<Matrix>> inputs(kThreads);
  std::vector<std::vector<service::SyrkResult>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    inputs[static_cast<std::size_t>(t)].reserve(kPerThread);
    threads.emplace_back([&, t] {
      auto& in = inputs[static_cast<std::size_t>(t)];
      std::vector<service::SyrkTicket> tickets;
      for (int j = 0; j < kPerThread; ++j) {
        in.push_back(random_matrix(
            24, 32, static_cast<std::uint64_t>(t * 977 + j)));
        tickets.push_back(svc.submit(core::SyrkRequest(in.back())
                                         .on_procs(caps[t])
                                         .with_pipeline(chunk_counts[t])));
      }
      for (auto& tk : tickets) {
        results[static_cast<std::size_t>(t)].push_back(tk.wait());
      }
    });
  }
  for (auto& th : threads) th.join();
  svc.drain();

  core::Session solo(12);
  core::PlanSearchOptions plan_opts;
  plan_opts.allow_folding = false;
  solo.set_plan_options(plan_opts);
  for (int t = 0; t < kThreads; ++t) {
    for (int j = 0; j < kPerThread; ++j) {
      const auto& res =
          results[static_cast<std::size_t>(t)][static_cast<std::size_t>(j)];
      const auto ref = core::syrk(
          solo, core::SyrkRequest(
                    inputs[static_cast<std::size_t>(t)]
                          [static_cast<std::size_t>(j)])
                    .on_procs(caps[t])
                    .with_pipeline(chunk_counts[t]));
      EXPECT_TRUE(bitwise_equal(res.run.c, ref.c)) << t << "/" << j;
      EXPECT_EQ(res.run.total.total, ref.total.total) << t << "/" << j;
      EXPECT_EQ(res.run.total.max, ref.total.max) << t << "/" << j;
    }
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.pipelined_jobs,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(SyrkService, PoisonedRoundRetriesPipelinedInnocentsBitwise) {
  // The guilty job is itself pipelined: the 2D kernel's n1 % c² rejection
  // fires inside the SPMD body, after batching — so the round is poisoned
  // while the innocent's chunked collectives are (potentially) in flight.
  // Recovery must tear the whole world job down, and the innocent's solo
  // retry must be bitwise-identical to a clean solo run.
  service::SyrkService svc(packable_options(12));
  Matrix bad_a = random_matrix(18, 8, 5);     // 18 % 2² != 0
  Matrix good_1d = random_matrix(24, 48, 6);
  Matrix good_2d = random_matrix(16, 8, 7);
  auto bad =
      svc.submit(core::SyrkRequest(bad_a).use_2d(2).with_pipeline(3));
  auto g1 =
      svc.submit(core::SyrkRequest(good_1d).on_procs(4).with_pipeline(2));
  EXPECT_THROW(bad.wait(), InvalidArgument);
  const auto r1 = g1.wait();
  svc.drain();
  // With exactly two jobs in flight, a batched round can only have been
  // the poisoned one — so batching implies both members were retried solo.
  const auto st_mid = svc.stats();
  if (st_mid.batched_rounds > 0) EXPECT_EQ(st_mid.retried_jobs, 2u);

  // Post-recovery: a fresh pipelined job runs on the recovered world.
  auto g2 =
      svc.submit(core::SyrkRequest(good_2d).use_2d(2).with_pipeline(4));
  const auto r2 = g2.wait();
  svc.drain();

  core::Session solo(12);
  core::PlanSearchOptions plan_opts;
  plan_opts.allow_folding = false;
  solo.set_plan_options(plan_opts);
  const auto ref1 = core::syrk(
      solo, core::SyrkRequest(good_1d).on_procs(4).with_pipeline(2));
  const auto ref2 = core::syrk(
      solo, core::SyrkRequest(good_2d).use_2d(2).with_pipeline(4));
  EXPECT_TRUE(bitwise_equal(r1.run.c, ref1.c));
  EXPECT_TRUE(bitwise_equal(r2.run.c, ref2.c));
  EXPECT_EQ(r1.run.total.total, ref1.total.total);
  EXPECT_EQ(r2.run.total.total, ref2.total.total);

  const auto st = svc.stats();
  EXPECT_EQ(st.failed, 1u);
  // Only completed jobs count as pipelined; the guilty one failed.
  EXPECT_EQ(st.pipelined_jobs, 2u);
}

TEST(SyrkService, HandAssembledNegativeChunksRejectedAtAdmission) {
  // SyrkOptions is an open aggregate: with_pipeline validates, but a
  // directly-stamped negative chunk count must still fail at admission
  // (not silently run blocking), and must not poison the service.
  service::SyrkService svc(packable_options(8));
  Matrix a = random_matrix(16, 32, 11);
  core::SyrkRequest bad(a);
  bad.options.pipeline_chunks = -1;
  auto ticket = svc.submit(std::move(bad));
  EXPECT_THROW(ticket.wait(), InvalidArgument);
  EXPECT_EQ(ticket.status(), service::TicketStatus::kFailed);

  // Same guard for a hand-stamped bogus topology.
  core::SyrkRequest bad_topo(a);
  bad_topo.options.ranks_per_node = 0;
  auto t2 = svc.submit(std::move(bad_topo));
  EXPECT_THROW(t2.wait(), InvalidArgument);

  // The service stays healthy for well-formed follow-ups.
  auto ok = svc.submit(core::SyrkRequest(a).on_procs(4).with_pipeline(2));
  const auto& res = ok.wait();
  EXPECT_LT(max_abs_diff(res.run.c.view(), syrk_reference(a.view()).view()),
            1e-9);
  svc.drain();
  EXPECT_EQ(svc.stats().failed, 2u);
}

TEST(SyrkService, TopologyParticipatesInPlanCacheKey) {
  // Same shape, different ranks_per_node: distinct plan-cache entries (the
  // two-tier pricing can pick different plans). Repeats of each must hit.
  service::SyrkService svc(packable_options(8));
  Matrix a = random_matrix(24, 48, 3);
  for (int repeat = 0; repeat < 2; ++repeat) {
    svc.submit(core::SyrkRequest(a)).wait();
    svc.submit(core::SyrkRequest(a).with_topology(2)).wait();
  }
  svc.drain();
  const auto st = svc.stats();
  // One miss per distinct (shape, topology) key — a single miss here would
  // mean ranks_per_node leaked out of the cache key. Each request resolves
  // at admission and again at execution, so repeats only add hits.
  EXPECT_EQ(st.plan_cache.misses, 2u);
  EXPECT_EQ(st.plan_cache.entries, 2u);
  EXPECT_GE(st.plan_cache.hits, 2u);
}

TEST(SyrkService, TopologyRequestsRunSoloWithNodeAccounting) {
  // A topology'd request stamps its rpn on the shared session world, so it
  // must never share a round; the result carries the node count and the
  // per-node inter summary, and batched flat jobs are unaffected.
  service::SyrkService svc(packable_options(8));
  Matrix a = random_matrix(16, 24, 9);
  Matrix b = random_matrix(20, 12, 4);
  auto topo =
      svc.submit(core::SyrkRequest(a).use_1d().on_procs(8).with_topology(2));
  auto flat1 = svc.submit(core::SyrkRequest(b).on_procs(4));
  auto flat2 = svc.submit(core::SyrkRequest(b).on_procs(4));
  const auto rt = topo.wait();
  const auto r1 = flat1.wait();
  const auto r2 = flat2.wait();
  svc.drain();

  EXPECT_FALSE(rt.batched);
  EXPECT_EQ(rt.run.nodes, 4);
  EXPECT_GT(rt.run.total_inter.max.words_sent, 0u);
  // Flat jobs (whether batched or solo) never report a topology.
  EXPECT_EQ(r1.run.nodes, 0);
  EXPECT_EQ(r2.run.nodes, 0);

  core::Session solo(8);
  const auto ref = core::syrk(
      solo, core::SyrkRequest(a).use_1d().on_procs(8).with_topology(2));
  EXPECT_TRUE(bitwise_equal(rt.run.c, ref.c));
  EXPECT_LT(max_abs_diff(r1.run.c.view(), syrk_reference(b.view()).view()),
            1e-9);
}

}  // namespace
}  // namespace parsyrk
