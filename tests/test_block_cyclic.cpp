// Tests for the 2D block-cyclic distribution (the ScaLAPACK/Elemental
// layout used by the library comparators).
#include <gtest/gtest.h>

#include <map>

#include "distribution/block_cyclic.hpp"

namespace parsyrk::dist {
namespace {

TEST(BlockCyclic, OwnerCoordsFollowBlockIndices) {
  BlockCyclic2D d(16, 16, 2, 2, 2, 2);
  EXPECT_EQ(d.owner_coords(0, 0), (std::pair{0, 0}));
  EXPECT_EQ(d.owner_coords(1, 1), (std::pair{0, 0}));  // same 2×2 block
  EXPECT_EQ(d.owner_coords(2, 0), (std::pair{1, 0}));
  EXPECT_EQ(d.owner_coords(0, 2), (std::pair{0, 1}));
  EXPECT_EQ(d.owner_coords(4, 4), (std::pair{0, 0}));  // wrapped around
}

TEST(BlockCyclic, OwnerRankRowMajor) {
  BlockCyclic2D d(8, 8, 2, 2, 2, 2);
  EXPECT_EQ(d.owner_rank(0, 0), 0);
  EXPECT_EQ(d.owner_rank(0, 2), 1);
  EXPECT_EQ(d.owner_rank(2, 0), 2);
  EXPECT_EQ(d.owner_rank(2, 2), 3);
}

TEST(BlockCyclic, LocalCountsPartitionTheMatrix) {
  for (auto [rows, cols, mb, nb, pr, pc] :
       {std::tuple{16, 16, 2, 2, 2, 2}, std::tuple{17, 13, 3, 2, 2, 3},
        std::tuple{100, 7, 8, 3, 4, 2}, std::tuple{5, 5, 8, 8, 2, 2}}) {
    BlockCyclic2D d(rows, cols, mb, nb, pr, pc);
    std::size_t total = 0;
    for (int p = 0; p < pr; ++p) {
      for (int q = 0; q < pc; ++q) {
        total += d.local_rows(p) * d.local_cols(q);
      }
    }
    EXPECT_EQ(total, static_cast<std::size_t>(rows) * cols)
        << rows << "x" << cols;
  }
}

TEST(BlockCyclic, GlobalLocalRoundTrip) {
  BlockCyclic2D d(23, 17, 3, 4, 2, 3);
  for (std::size_t i = 0; i < 23; ++i) {
    for (std::size_t j = 0; j < 17; ++j) {
      const auto [p, q] = d.owner_coords(i, j);
      const auto [li, lj] = d.global_to_local(i, j);
      EXPECT_LT(li, d.local_rows(p));
      EXPECT_LT(lj, d.local_cols(q));
      EXPECT_EQ(d.local_to_global(p, q, li, lj), (std::pair{i, j}));
    }
  }
}

TEST(BlockCyclic, LocalIndicesAreDenseAndUnique) {
  // Every (owner, local index) pair must be hit exactly once.
  BlockCyclic2D d(19, 11, 2, 3, 3, 2);
  std::map<std::tuple<int, std::size_t, std::size_t>, int> seen;
  for (std::size_t i = 0; i < 19; ++i) {
    for (std::size_t j = 0; j < 11; ++j) {
      const auto [li, lj] = d.global_to_local(i, j);
      ++seen[{d.owner_rank(i, j), li, lj}];
    }
  }
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);
  EXPECT_EQ(seen.size(), 19u * 11u);
}

TEST(BlockCyclic, CyclicBalancesLowerTriangleBetterThanBlock) {
  // The motivation for cyclic layouts: with one big block per processor
  // (block layout), the lower-triangle work is ~2x imbalanced; with small
  // cyclic blocks it evens out.
  const std::size_t n = 96;
  const int r = 4;
  auto imbalance = [&](std::size_t block) {
    BlockCyclic2D d(n, n, block, block, r, r);
    std::map<int, std::size_t> work;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) ++work[d.owner_rank(i, j)];
    }
    std::size_t mx = 0, total = 0;
    for (const auto& [rank, w] : work) {
      mx = std::max(mx, w);
      total += w;
    }
    return static_cast<double>(mx) /
           (static_cast<double>(total) / (r * r));
  };
  const double block_layout = imbalance(n / r);  // one block per proc
  const double cyclic_layout = imbalance(4);     // 4x4 cyclic blocks
  EXPECT_GT(block_layout, 1.7);
  EXPECT_LT(cyclic_layout, 1.25);
}

TEST(BlockCyclic, RejectsBadParameters) {
  EXPECT_THROW(BlockCyclic2D(4, 4, 0, 1, 1, 1), InvalidArgument);
  EXPECT_THROW(BlockCyclic2D(4, 4, 1, 1, 0, 1), InvalidArgument);
}

}  // namespace
}  // namespace parsyrk::dist
