// Tests for src/simmpi: point-to-point transport, collectives (pairwise
// exchange and §6 latency-efficient variants), sub-communicators, and the
// cost ledger's agreement with the closed-form collective costs.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "costmodel/model.hpp"
#include "simmpi/comm.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parsyrk::comm {
namespace {

/// Deterministic per-(rank, slot) payload value.
double val(int rank, int slot) { return rank * 1000.0 + slot; }

TEST(PointToPoint, SendRecvRoundTrip) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<double>{1.0, 2.0, 3.0});
      auto back = comm.recv(1, 8);
      ASSERT_EQ(back.size(), 1u);
      EXPECT_DOUBLE_EQ(back[0], 42.0);
    } else {
      auto msg = comm.recv(0, 7);
      ASSERT_EQ(msg.size(), 3u);
      EXPECT_DOUBLE_EQ(msg[2], 3.0);
      comm.send(0, 8, std::vector<double>{42.0});
    }
  });
}

TEST(PointToPoint, TagMatchingOutOfOrder) {
  // A receive for tag 2 must match the tag-2 message even if a tag-1
  // message arrived first.
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>{111.0});
      comm.send(1, 2, std::vector<double>{222.0});
    } else {
      auto second = comm.recv(0, 2);
      auto first = comm.recv(0, 1);
      EXPECT_DOUBLE_EQ(second[0], 222.0);
      EXPECT_DOUBLE_EQ(first[0], 111.0);
    }
  });
}

TEST(PointToPoint, LedgerCountsWords) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<double>(17, 1.0));
    } else {
      comm.recv(0, 0);
    }
  });
  auto per_rank = world.ledger().per_rank();
  EXPECT_EQ(per_rank[0].words_sent, 17u);
  EXPECT_EQ(per_rank[0].msgs_sent, 1u);
  EXPECT_EQ(per_rank[1].words_recv, 17u);
  EXPECT_EQ(per_rank[1].msgs_recv, 1u);
  EXPECT_EQ(per_rank[0].words_recv, 0u);
}

TEST(Barrier, AllRanksPass) {
  World world(7);
  std::atomic<int> before{0}, after{0};
  world.run([&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    // Every rank must have incremented `before` by the time any rank is
    // past the barrier.
    EXPECT_EQ(before.load(), 7);
    after.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(after.load(), 7);
  });
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, AllToAllVDeliversAndReorders) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    std::vector<std::vector<double>> send(p);
    for (int d = 0; d < p; ++d) {
      send[d] = {val(comm.rank(), d), val(comm.rank(), d) + 0.5};
    }
    auto recv = comm.all_to_all_v(send);
    ASSERT_EQ(static_cast<int>(recv.size()), p);
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(recv[s].size(), 2u);
      EXPECT_DOUBLE_EQ(recv[s][0], val(s, comm.rank()));
      EXPECT_DOUBLE_EQ(recv[s][1], val(s, comm.rank()) + 0.5);
    }
  });
}

TEST_P(CollectiveSizes, AllToAllVVariableAndEmptyBlocks) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    // Rank r sends d words to destination d (zero-size blocks included).
    std::vector<std::vector<double>> send(p);
    for (int d = 0; d < p; ++d) {
      send[d].assign(d, val(comm.rank(), d));
    }
    auto recv = comm.all_to_all_v(send);
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(recv[s].size(), static_cast<std::size_t>(comm.rank()));
      for (double x : recv[s]) EXPECT_DOUBLE_EQ(x, val(s, comm.rank()));
    }
  });
}

TEST_P(CollectiveSizes, ReduceScatterEqualSumsBlocks) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    // Rank r contributes value r+1 everywhere; each block sums to
    // p(p+1)/2 per word.
    std::vector<double> data(3 * p, comm.rank() + 1.0);
    auto mine = comm.reduce_scatter_equal(data);
    ASSERT_EQ(mine.size(), 3u);
    for (double x : mine) EXPECT_DOUBLE_EQ(x, p * (p + 1) / 2.0);
  });
}

TEST_P(CollectiveSizes, ReduceScatterVariableBlockSizes) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    std::vector<std::size_t> sizes(p);
    std::size_t total = 0;
    for (int q = 0; q < p; ++q) {
      sizes[q] = q + 1;
      total += sizes[q];
    }
    // Word t of rank r's buffer is r*10000 + t; block q sum over ranks of
    // word t is sum_r (r*10000 + t) = 10000*p(p-1)/2 + p*t.
    std::vector<double> data(total);
    for (std::size_t t = 0; t < total; ++t) {
      data[t] = comm.rank() * 10000.0 + t;
    }
    auto mine = comm.reduce_scatter(data, sizes);
    ASSERT_EQ(mine.size(), sizes[comm.rank()]);
    std::size_t off = 0;
    for (int q = 0; q < comm.rank(); ++q) off += sizes[q];
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const double expect = 10000.0 * p * (p - 1) / 2.0 + p * (off + i);
      EXPECT_DOUBLE_EQ(mine[i], expect);
    }
  });
}

TEST_P(CollectiveSizes, AllReduceSumsEverywhere) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    std::vector<double> data(2 * p);
    for (std::size_t t = 0; t < data.size(); ++t) {
      data[t] = comm.rank() * 100.0 + t;
    }
    auto out = comm.all_reduce(data);
    ASSERT_EQ(out.size(), data.size());
    for (std::size_t t = 0; t < out.size(); ++t) {
      const double expect = 100.0 * p * (p - 1) / 2.0 + p * t;
      EXPECT_DOUBLE_EQ(out[t], expect);
    }
  });
}

TEST(LedgerFormulas, AllReduceMatchesComposedCost) {
  const int p = 8;
  const std::size_t w = 64;
  World world(p);
  world.run([w](Comm& comm) {
    comm.all_reduce(std::vector<double>(w, 1.0));
  });
  const auto expected = costmodel::all_reduce_pairwise(p, w);
  for (const auto& r : world.ledger().per_rank()) {
    EXPECT_DOUBLE_EQ(static_cast<double>(r.words_sent), expected.words);
    EXPECT_DOUBLE_EQ(static_cast<double>(r.msgs_sent), expected.messages);
  }
}

TEST_P(CollectiveSizes, AllGatherConcatenatesInRankOrder) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    std::vector<double> mine = {val(comm.rank(), 0), val(comm.rank(), 1)};
    auto all = comm.all_gather(mine);
    ASSERT_EQ(all.size(), 2u * p);
    for (int r = 0; r < p; ++r) {
      EXPECT_DOUBLE_EQ(all[2 * r], val(r, 0));
      EXPECT_DOUBLE_EQ(all[2 * r + 1], val(r, 1));
    }
  });
}

TEST_P(CollectiveSizes, AllGatherVUnequalSizes) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    std::vector<double> mine(comm.rank() + 1, val(comm.rank(), 9));
    auto all = comm.all_gather_v(mine);
    for (int r = 0; r < p; ++r) {
      ASSERT_EQ(all[r].size(), static_cast<std::size_t>(r) + 1);
      for (double x : all[r]) EXPECT_DOUBLE_EQ(x, val(r, 9));
    }
  });
}

TEST_P(CollectiveSizes, BruckReduceScatterMatchesPairwise) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    std::vector<double> data(3 * p);
    for (std::size_t t = 0; t < data.size(); ++t) {
      data[t] = comm.rank() * 1000.0 + t * 1.25;
    }
    auto bruck = comm.reduce_scatter_bruck(data);
    auto pairwise = comm.reduce_scatter_equal(data);
    ASSERT_EQ(bruck.size(), pairwise.size());
    for (std::size_t t = 0; t < bruck.size(); ++t) {
      EXPECT_NEAR(bruck[t], pairwise[t], 1e-9) << "P=" << p << " t=" << t;
    }
  });
}

TEST(LedgerFormulas, BruckReduceScatterIsDoublyOptimal) {
  // The §6 observation: Bruck-style Reduce-Scatter reaches BOTH the
  // bandwidth optimum (1−1/P)·w and the latency optimum ceil(log2 P).
  for (int p : {5, 8, 12, 16}) {
    World world(p);
    const std::size_t block = 16;
    world.run([block, p](Comm& comm) {
      comm.reduce_scatter_bruck(std::vector<double>(block * p, 1.0));
    });
    const auto expected =
        costmodel::reduce_scatter_bruck(p, static_cast<double>(block * p));
    for (const auto& r : world.ledger().per_rank()) {
      EXPECT_DOUBLE_EQ(static_cast<double>(r.words_sent), expected.words)
          << "P=" << p;
      EXPECT_DOUBLE_EQ(static_cast<double>(r.msgs_sent), expected.messages)
          << "P=" << p;
    }
  }
}

TEST_P(CollectiveSizes, BruckAllGatherMatchesPairwise) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    std::vector<double> mine = {val(comm.rank(), 3), val(comm.rank(), 4),
                                val(comm.rank(), 5)};
    auto bruck = comm.all_gather_bruck(mine);
    auto pairwise = comm.all_gather(mine);
    EXPECT_EQ(bruck, pairwise);
  });
}

TEST_P(CollectiveSizes, ButterflyAllToAllMatchesPairwise) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    const std::size_t block = 2;
    std::vector<double> send(block * p);
    std::vector<std::vector<double>> send_v(p);
    for (int d = 0; d < p; ++d) {
      send[d * block] = val(comm.rank(), d);
      send[d * block + 1] = val(comm.rank(), d) + 0.25;
      send_v[d] = {send[d * block], send[d * block + 1]};
    }
    auto bfly = comm.all_to_all_butterfly(send, block);
    auto pair = comm.all_to_all_v(send_v);
    for (int s = 0; s < p; ++s) {
      EXPECT_DOUBLE_EQ(bfly[s * block], pair[s][0]);
      EXPECT_DOUBLE_EQ(bfly[s * block + 1], pair[s][1]);
    }
  });
}

TEST_P(CollectiveSizes, BcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    World world(p);
    world.run([root](Comm& comm) {
      std::vector<double> data(4, comm.rank() == root ? 3.75 : -1.0);
      comm.bcast(data, root);
      for (double x : data) EXPECT_DOUBLE_EQ(x, 3.75);
    });
  }
}

TEST_P(CollectiveSizes, ReduceSumsToRoot) {
  const int p = GetParam();
  const int root = p / 2;
  World world(p);
  world.run([p, root](Comm& comm) {
    std::vector<double> data = {static_cast<double>(comm.rank()), 1.0};
    auto out = comm.reduce(data, root);
    if (comm.rank() == root) {
      ASSERT_EQ(out.size(), 2u);
      EXPECT_DOUBLE_EQ(out[0], p * (p - 1) / 2.0);
      EXPECT_DOUBLE_EQ(out[1], p);
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST_P(CollectiveSizes, GatherScatterRoundTrip) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    const int root = 0;
    std::vector<double> mine(2, val(comm.rank(), 1));
    auto gathered = comm.gather(mine, root);
    if (comm.rank() == root) {
      ASSERT_EQ(static_cast<int>(gathered.size()), p);
      for (int r = 0; r < p; ++r) {
        EXPECT_DOUBLE_EQ(gathered[r][0], val(r, 1));
      }
    }
    auto back = comm.scatter(gathered, root);  // gathered empty off-root: ok
    ASSERT_EQ(back.size(), 2u);
    EXPECT_DOUBLE_EQ(back[0], val(comm.rank(), 1));
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

TEST(LedgerFormulas, AllToAllMatchesPairwiseCost) {
  // Measured words per rank must equal §3.2's (1−1/P)·w exactly for equal
  // blocks, and messages must equal P−1.
  const int p = 8;
  const std::size_t block = 25;
  World world(p);
  world.run([p, block](Comm& comm) {
    std::vector<std::vector<double>> send(p, std::vector<double>(block, 1.0));
    comm.all_to_all_v(send);
  });
  const auto expected = costmodel::all_to_all_pairwise(p, block * p);
  for (const auto& r : world.ledger().per_rank()) {
    EXPECT_DOUBLE_EQ(static_cast<double>(r.words_sent), expected.words);
    EXPECT_DOUBLE_EQ(static_cast<double>(r.words_recv), expected.words);
    EXPECT_DOUBLE_EQ(static_cast<double>(r.msgs_sent), expected.messages);
  }
}

TEST(LedgerFormulas, ReduceScatterMatchesPairwiseCost) {
  const int p = 12;
  const std::size_t block = 10;
  World world(p);
  world.run([p, block](Comm& comm) {
    std::vector<double> data(block * p, 1.0);
    comm.reduce_scatter_equal(data);
  });
  const auto expected = costmodel::reduce_scatter_pairwise(p, block * p);
  for (const auto& r : world.ledger().per_rank()) {
    EXPECT_DOUBLE_EQ(static_cast<double>(r.words_sent), expected.words);
    EXPECT_DOUBLE_EQ(static_cast<double>(r.msgs_sent), expected.messages);
  }
}

TEST(LedgerFormulas, BruckLatencyIsLogP) {
  const int p = 16;
  World world(p);
  world.run([](Comm& comm) {
    std::vector<double> mine(8, 1.0);
    comm.all_gather_bruck(mine);
  });
  for (const auto& r : world.ledger().per_rank()) {
    EXPECT_EQ(r.msgs_sent, 4u);  // ceil(log2 16)
    EXPECT_EQ(r.words_sent, 8u * 15u);
  }
}

TEST(LedgerFormulas, PhaseAttribution) {
  World world(4);
  world.run([](Comm& comm) {
    comm.set_phase("one");
    comm.all_gather(std::vector<double>(5, 1.0));
    comm.set_phase("two");
    comm.reduce_scatter_equal(std::vector<double>(8, 1.0));
  });
  const auto one = world.ledger().summary("one");
  const auto two = world.ledger().summary("two");
  EXPECT_EQ(one.max.words_sent, 15u);  // 3 partners × 5 words
  EXPECT_EQ(two.max.words_sent, 6u);   // (1 − 1/4) × 8
  const auto total = world.ledger().summary();
  EXPECT_EQ(total.max.words_sent, 21u);
  EXPECT_EQ(world.ledger().phases().size(), 2u);
}

TEST(LedgerFormulas, CriticalPathWordsIsMaxOverRanks) {
  World world(3);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<double>(100, 1.0));
      comm.send(2, 0, std::vector<double>(1, 1.0));
    } else {
      comm.recv(0, 0);
    }
  });
  EXPECT_EQ(world.ledger().summary().critical_path_words(), 101u);
}

TEST(LedgerFormulas, ResetClears) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<double>(9, 0.0));
    } else {
      comm.recv(0, 0);
    }
  });
  world.ledger().reset();
  EXPECT_EQ(world.ledger().summary().critical_path_words(), 0u);
}

TEST(Split, RowColumnGrids) {
  // 6 ranks as a 2×3 grid: rows {0,1,2}, {3,4,5}; columns {0,3}, {1,4}, {2,5}.
  World world(6);
  world.run([](Comm& comm) {
    const int row = comm.rank() / 3;
    const int col = comm.rank() % 3;
    Comm row_comm = comm.split(row, col);
    Comm col_comm = comm.split(col, row);
    EXPECT_EQ(row_comm.size(), 3);
    EXPECT_EQ(col_comm.size(), 2);
    EXPECT_EQ(row_comm.rank(), col);
    EXPECT_EQ(col_comm.rank(), row);
    // Collectives on the sub-communicators see only group members.
    auto ids = row_comm.all_gather(
        std::vector<double>{static_cast<double>(comm.rank())});
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(ids[j], row * 3 + j);
    auto cid = col_comm.all_gather(
        std::vector<double>{static_cast<double>(comm.rank())});
    for (int i = 0; i < 2; ++i) EXPECT_DOUBLE_EQ(cid[i], i * 3 + col);
  });
}

TEST(Split, KeyOverridesRankOrder) {
  World world(4);
  world.run([](Comm& comm) {
    // Reverse ordering via descending keys.
    Comm rev = comm.split(0, -comm.rank());
    EXPECT_EQ(rev.rank(), 3 - comm.rank());
  });
}

TEST(Split, NestedSplits) {
  World world(8);
  world.run([](Comm& comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    auto sum = quarter.reduce(std::vector<double>{1.0}, 0);
    if (quarter.rank() == 0) EXPECT_DOUBLE_EQ(sum[0], 2.0);
  });
}

TEST(World, RunIsRepeatable) {
  World world(5);
  for (int iter = 0; iter < 3; ++iter) {
    world.run([](Comm& comm) {
      auto all = comm.all_gather(
          std::vector<double>{static_cast<double>(comm.rank())});
      EXPECT_EQ(all.size(), 5u);
    });
  }
  // 3 iterations × 4 partners × 1 word.
  EXPECT_EQ(world.ledger().per_rank()[0].words_sent, 12u);
}

TEST(World, ExceptionPropagates) {
  World world(3);
  auto thrower = [](Comm& comm) {
    if (comm.rank() == 1) {
      throw parsyrk::InvalidArgument("deliberate failure");
    }
  };
  EXPECT_THROW(world.run(thrower), parsyrk::InvalidArgument);
}

TEST(FailurePropagation, BlockedReceiversUnwind) {
  // Rank 2 fails while the others wait on messages that will never come;
  // everyone must unwind and the original error must surface.
  World world(4);
  auto body = [](Comm& comm) {
    if (comm.rank() == 2) {
      throw parsyrk::InvalidArgument("deliberate failure on rank 2");
    }
    comm.recv((comm.rank() + 1) % 4, 5);  // blocks forever without poison
  };
  EXPECT_THROW(world.run(body), parsyrk::InvalidArgument);
  // The runtime must remain usable after the failed run.
  world.run([](Comm& comm) {
    auto all = comm.all_gather(
        std::vector<double>{static_cast<double>(comm.rank())});
    EXPECT_EQ(all.size(), 4u);
  });
}

TEST(FailurePropagation, BlockedBarrierUnwinds) {
  World world(3);
  auto body = [](Comm& comm) {
    if (comm.rank() == 0) {
      throw parsyrk::InvalidArgument("rank 0 failed before the barrier");
    }
    comm.barrier();  // can never complete: rank 0 is gone
  };
  EXPECT_THROW(world.run(body), parsyrk::InvalidArgument);
  world.run([](Comm& comm) { comm.barrier(); });  // reusable
}

TEST(FailurePropagation, FailureInsideCollective) {
  // A rank dies mid-collective; peers inside the pairwise exchange unwind.
  World world(5);
  auto body = [](Comm& comm) {
    if (comm.rank() == 3) {
      throw parsyrk::InvalidArgument("rank 3 died before the collective");
    }
    comm.all_gather(std::vector<double>(8, 1.0));
  };
  EXPECT_THROW(world.run(body), parsyrk::InvalidArgument);
}

TEST(World, DeterministicReduction) {
  // Same seed, same P: the reduce-scatter accumulation order is fixed, so
  // results are bitwise identical across runs.
  auto run_once = [] {
    World world(6);
    std::vector<double> out;
    world.run([&](Comm& comm) {
      Rng rng(1000 + comm.rank());
      std::vector<double> data(12);
      for (auto& x : data) x = rng.uniform(-1, 1);
      auto mine = comm.reduce_scatter_equal(data);
      if (comm.rank() == 0) out = mine;
    });
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Nonblocking primitives
// ---------------------------------------------------------------------------

TEST(Nonblocking, IsendIrecvRoundTrip) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      Request s = comm.isend(1, /*tag=*/3, std::vector<double>{1.0, 2.0});
      EXPECT_TRUE(s.done());  // eager buffered: born complete
      s.wait();               // idempotent on a complete handle
    } else {
      Request r = comm.irecv(0, /*tag=*/3);
      auto msg = r.take();
      ASSERT_EQ(msg.size(), 2u);
      EXPECT_DOUBLE_EQ(msg[0], 1.0);
      EXPECT_DOUBLE_EQ(msg[1], 2.0);
      EXPECT_TRUE(r.done());
    }
  });
}

TEST(Nonblocking, EmptyRequestIsHarmless) {
  Request req;
  EXPECT_FALSE(req.valid());
  EXPECT_TRUE(req.done());  // nothing outstanding
}

TEST(Nonblocking, TestPollingCompletesCollectives) {
  // Driving handles purely via test() (never wait) completes them and
  // produces the same results as the blocking wrappers.
  const int p = 4;
  World world(p);
  world.run([&](Comm& comm) {
    std::vector<double> data(static_cast<std::size_t>(p) * 2);
    for (int b = 0; b < p; ++b) {
      data[b * 2] = 1.0 * comm.rank();
      data[b * 2 + 1] = 10.0 * b;
    }
    Request rs = comm.ireduce_scatter(
        data, std::vector<std::size_t>(p, 2));
    Request ag = comm.iall_gather(std::vector<double>{1.0 * comm.rank()});
    while (!rs.test() || !ag.test()) {
    }
    auto mine = rs.take();
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_DOUBLE_EQ(mine[0], p * (p - 1) / 2.0);
    EXPECT_DOUBLE_EQ(mine[1], 10.0 * comm.rank() * p);
    auto all = ag.take();
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) EXPECT_DOUBLE_EQ(all[s], 1.0 * s);
  });
}

TEST(Nonblocking, TakePartsMovesPerRankResult) {
  const int p = 3;
  World world(p);
  world.run([&](Comm& comm) {
    std::vector<std::vector<double>> send(p);
    for (int d = 0; d < p; ++d) {
      send[d].assign(static_cast<std::size_t>(d) + 1, 1.0 * comm.rank());
    }
    Request req = comm.iall_to_all_v(send);
    auto parts = req.take_parts();
    ASSERT_EQ(parts.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(parts[s].size(), static_cast<std::size_t>(comm.rank()) + 1);
      for (double x : parts[s]) EXPECT_DOUBLE_EQ(x, 1.0 * s);
    }
  });
}

TEST(Nonblocking, BlockingWrappersMatchNonblockingResults) {
  // The blocking collectives are now thin create-then-wait wrappers; both
  // spellings must agree exactly.
  const int p = 4;
  World a(p), b(p);
  std::vector<double> blocking_out, nonblocking_out;
  a.run([&](Comm& comm) {
    auto mine = comm.reduce_scatter_equal(
        std::vector<double>(static_cast<std::size_t>(p) * 3,
                            1.0 + comm.rank()));
    if (comm.rank() == 1) blocking_out = mine;
  });
  b.run([&](Comm& comm) {
    Request req = comm.ireduce_scatter(
        std::vector<double>(static_cast<std::size_t>(p) * 3,
                            1.0 + comm.rank()),
        std::vector<std::size_t>(p, 3));
    auto mine = req.take();
    if (comm.rank() == 1) nonblocking_out = mine;
  });
  EXPECT_EQ(blocking_out, nonblocking_out);
  EXPECT_EQ(a.ledger().summary().total, b.ledger().summary().total);
}

}  // namespace
}  // namespace parsyrk::comm
