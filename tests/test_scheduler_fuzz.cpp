// Randomized fuzz tests for the streaming scheduler stack, alongside
// test_simmpi_fuzz: plan_stream_step invariants over random hole/queue
// shapes, World::launch_ranks interleaving (random disjoint ranges running
// random collective scripts concurrently, validated against fresh solo
// worlds rank for rank), poison/recovery of in-flight ranges, and whole
// randomized workloads through the streaming SyrkService compared bitwise
// to solo runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/session.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "service/scheduler.hpp"
#include "service/service.hpp"
#include "simmpi/comm.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parsyrk {
namespace {

// Like test_simmpi_fuzz, this suite runs fully verified: the streaming
// scheduler's mid-flight rank-subset launches are exactly the interleavings
// most likely to trip a false positive in the verifier's scope handling.
const bool kVerifyEnabled = [] {
  setenv("PARSYRK_VERIFY", "1", /*overwrite=*/1);
  return true;
}();

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (std::memcmp(x.data() + i * x.ld(), y.data() + i * y.ld(),
                    x.cols() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// plan_stream_step invariants under random holes and queues
// ---------------------------------------------------------------------------

class FuzzStreamStep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzStreamStep, DispatchDecisionsKeepTheInvariants) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  for (int iter = 0; iter < 200; ++iter) {
    const int world = static_cast<int>(rng.uniform_int(2, 24));
    // Random maximal free intervals: walk the world, flipping between
    // busy and free runs.
    std::vector<service::RankInterval> free;
    int at = 0;
    bool is_free = rng.uniform_int(0, 1) == 0;
    while (at < world) {
      const int len =
          static_cast<int>(rng.uniform_int(1, static_cast<std::uint64_t>(
                                                  world - at)));
      if (is_free) free.push_back({at, len});
      at += len;
      is_free = !is_free;
    }
    const std::size_t n_jobs = rng.uniform_int(1, 8);
    std::vector<service::JobSpec> queue(n_jobs);
    for (auto& j : queue) {
      j.ranks = rng.uniform_int(1, 8);
      j.modeled_seconds = static_cast<double>(rng.uniform_int(0, 100)) * 1e-3;
      j.solo = rng.uniform_int(0, 9) == 0;
    }
    service::AdmissionLimits limits;
    limits.modeled_seconds_per_round =
        static_cast<double>(rng.uniform_int(1, 200)) * 1e-3;
    limits.max_jobs_per_round = rng.uniform_int(1, 6);
    const double inflight_modeled =
        static_cast<double>(rng.uniform_int(0, 100)) * 1e-3;
    const std::size_t inflight_jobs = rng.uniform_int(0, 4);

    const auto placed = service::plan_stream_step(
        queue, free, inflight_modeled, inflight_jobs, limits);

    // FIFO prefix: placement i dispatches queue[i], nothing is skipped.
    for (std::size_t i = 0; i < placed.size(); ++i) {
      ASSERT_EQ(placed[i].job, i) << "seed " << seed << " iter " << iter;
      ASSERT_FALSE(queue[i].solo) << "solo job dispatched into the stream";
    }
    // Job cap honors in-flight jobs (the planner cannot shrink what is
    // already in flight; it may only refuse to add).
    const std::size_t cap = std::max<std::size_t>(1, limits.max_jobs_per_round);
    ASSERT_LE(placed.size(),
              inflight_jobs < cap ? cap - inflight_jobs : std::size_t{0})
        << "seed " << seed << " iter " << iter;
    // Every placement sits inside one free interval, and concurrently
    // placed jobs never overlap.
    std::vector<bool> used(static_cast<std::size_t>(world), true);
    for (const auto& iv : free) {
      for (int r = iv.base; r < iv.base + iv.extent; ++r) {
        used[static_cast<std::size_t>(r)] = false;
      }
    }
    for (const auto& pl : placed) {
      const auto ranks = queue[pl.job].ranks;
      ASSERT_GE(pl.base_rank, 0);
      ASSERT_LE(pl.base_rank + static_cast<int>(ranks), world);
      for (int r = pl.base_rank; r < pl.base_rank + static_cast<int>(ranks);
           ++r) {
        ASSERT_FALSE(used[static_cast<std::size_t>(r)])
            << "rank " << r << " double-booked (seed " << seed << ")";
        used[static_cast<std::size_t>(r)] = true;
      }
    }
    // Budget: every placement except the idle-world head (always exempt —
    // the no-starvation rule) passed the admission check at its dispatch
    // point; an over-budget exempt head additionally keeps its cost out of
    // the follower budget.
    double budget_used = inflight_modeled;
    for (const auto& pl : placed) {
      const bool exempt_head = pl.job == 0 && inflight_jobs == 0;
      if (!exempt_head) {
        ASSERT_LE(budget_used + queue[pl.job].modeled_seconds,
                  limits.modeled_seconds_per_round + 1e-12)
            << "seed " << seed << " iter " << iter;
      }
      if (!(exempt_head && queue[0].modeled_seconds >
                               limits.modeled_seconds_per_round)) {
        budget_used += queue[pl.job].modeled_seconds;
      }
    }
    // No starvation: an idle world with a packable non-solo head always
    // dispatches something.
    if (inflight_jobs == 0 && !queue[0].solo) {
      bool head_fits = false;
      for (const auto& iv : free) {
        head_fits = head_fits ||
                    static_cast<std::uint64_t>(iv.extent) >= queue[0].ranks;
      }
      if (head_fits) {
        ASSERT_FALSE(placed.empty()) << "seed " << seed << " iter " << iter;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzStreamStep,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108));

// ---------------------------------------------------------------------------
// World::launch_ranks: random disjoint ranges, interleaved completion
// ---------------------------------------------------------------------------

/// Deterministic payload for (range, round, rank).
double val(int range, int round, int rank) {
  return range * 1e7 + round * 1e3 + rank;
}

/// A per-range collective script, identical on a range comm of a streamed
/// world and on rank-equivalent fresh solo worlds.
std::function<void(comm::Comm&)> range_script(int range, int rounds,
                                              const std::vector<int>& ops) {
  return [range, rounds, ops](comm::Comm& comm) {
    const int p = comm.size();
    for (int r = 0; r < rounds; ++r) {
      switch (ops[static_cast<std::size_t>(r)] % 3) {
        case 0: {
          auto all = comm.all_gather(
              std::vector<double>{val(range, r, comm.rank())});
          for (int s = 0; s < p; ++s) {
            ASSERT_DOUBLE_EQ(all[static_cast<std::size_t>(s)],
                             val(range, r, s));
          }
          break;
        }
        case 1: {
          std::vector<double> data(static_cast<std::size_t>(p), 1.0);
          auto mine = comm.reduce_scatter_equal(data);
          for (double x : mine) ASSERT_DOUBLE_EQ(x, 1.0 * p);
          break;
        }
        default: {
          comm::Comm sub = comm.split(comm.rank() % 2, comm.rank());
          auto ids = sub.all_gather(std::vector<double>{1.0 * comm.rank()});
          int expect = comm.rank() % 2;
          for (double x : ids) {
            ASSERT_DOUBLE_EQ(x, expect);
            expect += 2;
          }
          break;
        }
      }
    }
  };
}

class FuzzLaunchRanges : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzLaunchRanges, ConcurrentRangesMatchFreshWorldsRankForRank) {
  const std::uint64_t seed = GetParam();
  Rng planner(seed);
  const int p = static_cast<int>(planner.uniform_int(4, 16));

  // Random contiguous partition of [0, p) into 2+ ranges.
  std::vector<std::pair<int, int>> ranges;
  int at = 0;
  while (at < p) {
    const int extent = static_cast<int>(
        planner.uniform_int(1, static_cast<std::uint64_t>(
                                   std::max(1, (p - at) / 2 + 1))));
    ranges.emplace_back(at, at + extent);
    at += extent;
  }
  const int rounds = static_cast<int>(planner.uniform_int(3, 10));
  std::vector<std::vector<int>> ops(ranges.size());
  for (auto& o : ops) {
    o.resize(static_cast<std::size_t>(rounds));
    for (int& x : o) x = static_cast<int>(planner.uniform_int(0, 2));
  }

  // Per-rank reference counters from fresh solo worlds of each range size.
  comm::World streamed(p);
  std::vector<std::vector<comm::Counters>> fresh(ranges.size());
  for (std::size_t g = 0; g < ranges.size(); ++g) {
    comm::World solo(ranges[g].second - ranges[g].first);
    solo.run(range_script(static_cast<int>(g), rounds, ops[g]));
    fresh[g] = solo.ledger().per_rank();
  }

  // Launch every range concurrently — completion order is whatever the
  // pool produces — in randomized launch order, then wait in another
  // randomized order (so reaping interleaves with still-running ranges).
  std::vector<std::size_t> order(ranges.size());
  for (std::size_t g = 0; g < order.size(); ++g) order[g] = g;
  for (std::size_t g = order.size(); g > 1; --g) {
    std::swap(order[g - 1], order[planner.uniform_int(0, g - 1)]);
  }
  std::vector<comm::RangeJob> jobs(ranges.size());
  for (std::size_t g : order) {
    jobs[g] = streamed.launch_ranks(
        ranges[g].first, ranges[g].second,
        range_script(static_cast<int>(g), rounds, ops[g]));
  }
  for (std::size_t g = order.size(); g > 1; --g) {
    std::swap(order[g - 1], order[planner.uniform_int(0, g - 1)]);
  }
  for (std::size_t g : order) {
    jobs[g].wait();
    EXPECT_FALSE(jobs[g].failed());
    EXPECT_FALSE(jobs[g].aborted());
  }

  // Interleaved execution moved exactly the solo traffic, rank for rank.
  const auto per_rank = streamed.ledger().per_rank();
  for (std::size_t g = 0; g < ranges.size(); ++g) {
    for (int r = ranges[g].first; r < ranges[g].second; ++r) {
      const auto& got = per_rank[static_cast<std::size_t>(r)];
      const auto& want =
          fresh[g][static_cast<std::size_t>(r - ranges[g].first)];
      EXPECT_EQ(got.msgs_sent, want.msgs_sent) << "rank " << r;
      EXPECT_EQ(got.words_sent, want.words_sent) << "rank " << r;
      EXPECT_EQ(got.words_recv, want.words_recv) << "rank " << r;
    }
  }

  // The world still runs a whole-world job afterwards.
  streamed.run([&](comm::Comm& comm) {
    auto all = comm.all_gather(std::vector<double>{1.0});
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
  });
}

TEST_P(FuzzLaunchRanges, PoisonedRangeAbortsInflightAndRecovers) {
  const std::uint64_t seed = GetParam();
  Rng planner(seed);
  const int p = 12;
  const std::vector<std::pair<int, int>> ranges = {{0, 4}, {4, 8}, {8, 12}};
  const std::size_t bad =
      static_cast<std::size_t>(planner.uniform_int(0, 2));
  const int bad_rank = static_cast<int>(planner.uniform_int(0, 3));
  const int rounds = 6;
  std::vector<int> ops(rounds);
  for (int& x : ops) x = static_cast<int>(planner.uniform_int(0, 2));

  comm::World world(p);
  std::vector<comm::RangeJob> jobs(ranges.size());
  for (std::size_t g = 0; g < ranges.size(); ++g) {
    auto script = range_script(static_cast<int>(g), rounds, ops);
    std::function<void(comm::Comm&)> body = script;
    if (g == bad) {
      body = [script, bad_rank](comm::Comm& comm) {
        if (comm.rank() == bad_rank) {
          throw std::runtime_error("fuzzed range failure");
        }
        script(comm);
      };
    }
    jobs[g] = world.launch_ranks(ranges[g].first, ranges[g].second, body);
  }
  // Poison is world-wide: every job completes (failed or aborted), the
  // guilty range carries the real error.
  for (auto& j : jobs) j.wait();
  EXPECT_TRUE(jobs[bad].failed());
  EXPECT_THROW(std::rethrow_exception(jobs[bad].error()),
               std::runtime_error);
  for (std::size_t g = 0; g < ranges.size(); ++g) {
    if (g == bad) continue;
    // Innocents either finished before the poison landed or aborted.
    EXPECT_FALSE(jobs[g].failed()) << "range " << g;
  }

  // After recovery, the same ranges run cleanly.
  world.recover_after_failure();
  for (std::size_t g = 0; g < ranges.size(); ++g) {
    jobs[g] = world.launch_ranks(
        ranges[g].first, ranges[g].second,
        range_script(static_cast<int>(g), rounds, ops));
  }
  for (auto& j : jobs) {
    j.wait();
    EXPECT_FALSE(j.failed());
    EXPECT_FALSE(j.aborted());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLaunchRanges,
                         ::testing::Values(201, 202, 203, 204, 205, 206, 207,
                                           208, 209, 210, 211, 212));

// ---------------------------------------------------------------------------
// Randomized workloads through the streaming service
// ---------------------------------------------------------------------------

class FuzzStreamService : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzStreamService, RandomWorkloadsMatchSoloBitwise) {
  const std::uint64_t seed = GetParam();
  Rng planner(seed);
  const int procs = static_cast<int>(planner.uniform_int(8, 12));
  const int jobs = static_cast<int>(planner.uniform_int(6, 14));
  const bool inject_poison = planner.uniform_int(0, 2) == 0;
  const int bad_job =
      inject_poison ? static_cast<int>(planner.uniform_int(0, jobs - 1)) : -1;

  const std::uint64_t cap_pool[] = {2, 3, 4, 6};
  std::vector<std::uint64_t> caps(static_cast<std::size_t>(jobs));
  std::vector<int> chunks(static_cast<std::size_t>(jobs));
  std::vector<Matrix> inputs;
  inputs.reserve(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    caps[static_cast<std::size_t>(j)] = cap_pool[planner.uniform_int(0, 3)];
    chunks[static_cast<std::size_t>(j)] =
        planner.uniform_int(0, 1) == 0
            ? 0
            : static_cast<int>(planner.uniform_int(2, 5));
    inputs.push_back(random_matrix(8 * planner.uniform_int(2, 6),
                                   planner.uniform_int(16, 48),
                                   seed * 1000 + static_cast<unsigned>(j)));
  }
  Matrix bad_a = random_matrix(18, 8, 5);  // 18 % 2² != 0: in-body failure

  service::ServiceOptions opts;
  opts.procs = procs;
  opts.plan_options.allow_folding = false;
  opts.scheduler = service::SchedMode::kStreaming;
  service::SyrkService svc(opts);

  std::vector<service::SyrkTicket> tickets;
  for (int j = 0; j < jobs; ++j) {
    if (j == bad_job) {
      tickets.push_back(svc.submit(core::SyrkRequest(bad_a).use_2d(2)));
      continue;
    }
    core::SyrkRequest req(inputs[static_cast<std::size_t>(j)]);
    req.on_procs(caps[static_cast<std::size_t>(j)]);
    if (chunks[static_cast<std::size_t>(j)] > 0) {
      req.with_pipeline(chunks[static_cast<std::size_t>(j)]);
    }
    tickets.push_back(svc.submit(std::move(req)));
  }

  core::Session solo(procs);
  core::PlanSearchOptions plan_opts;
  plan_opts.allow_folding = false;
  solo.set_plan_options(plan_opts);
  for (int j = 0; j < jobs; ++j) {
    if (j == bad_job) {
      EXPECT_THROW(tickets[static_cast<std::size_t>(j)].wait(),
                   InvalidArgument);
      continue;
    }
    const auto& res = tickets[static_cast<std::size_t>(j)].wait();
    core::SyrkRequest req(inputs[static_cast<std::size_t>(j)]);
    req.on_procs(caps[static_cast<std::size_t>(j)]);
    if (chunks[static_cast<std::size_t>(j)] > 0) {
      req.with_pipeline(chunks[static_cast<std::size_t>(j)]);
    }
    const auto ref = core::syrk(solo, std::move(req));
    EXPECT_TRUE(bitwise_equal(res.run.c, ref.c)) << "job " << j;
    EXPECT_EQ(res.run.total.total, ref.total.total) << "job " << j;
    EXPECT_EQ(res.run.total.max, ref.total.max) << "job " << j;
  }
  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.failed, inject_poison ? 1u : 0u);
  EXPECT_EQ(st.completed,
            static_cast<std::uint64_t>(jobs) - (inject_poison ? 1u : 0u));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzStreamService,
                         ::testing::Values(301, 302, 303, 304, 305, 306, 307,
                                           308, 309, 310));

}  // namespace
}  // namespace parsyrk
