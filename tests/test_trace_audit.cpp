// BoundAuditor property tests: randomized problem/grid sweeps across all
// three Theorem 1 regimes (1D small-P, 2D c(c+1) prime grids, 3D
// c(c+1)×p2 grids) must always audit clean — measured never below the
// lower bound (minus the documented slack), never above the algorithm's
// closed-form cost (plus tolerance) — while fabricated violations and
// tampered traces must be flagged.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bounds/syrk_bounds.hpp"
#include "core/session.hpp"
#include "matrix/random.hpp"
#include "support/rng.hpp"
#include "trace/audit.hpp"
#include "trace/export.hpp"

namespace parsyrk {
namespace {

using trace::AuditReport;
using trace::AuditVerdict;
using trace::BoundAuditor;

/// Runs one traced request and audits it (trace cross-check included).
AuditReport run_and_audit(core::SyrkRequest& req, int session_ranks,
                          std::uint64_t n1, std::uint64_t n2) {
  core::Session session(session_ranks);
  req.with_trace();
  const auto run = core::syrk(session, req);
  return BoundAuditor().audit(n1, n2, run,
                              run.trace ? &*run.trace : nullptr);
}

void expect_clean(const AuditReport& rep, const char* what) {
  EXPECT_EQ(rep.verdict, AuditVerdict::kOk)
      << what << ": " << audit_verdict_name(rep.verdict)
      << " measured=" << rep.measured_words
      << " bound=" << rep.bound.communicated
      << " modeled=" << rep.modeled_words;
  EXPECT_TRUE(rep.trace_checked) << what;
  EXPECT_TRUE(rep.trace_consistent) << what;
  EXPECT_GT(rep.measured_words, 0.0) << what;
  EXPECT_GT(rep.ratio_vs_bound, 0.0) << what;
}

class AuditSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuditSweep, RandomizedProblemsAuditCleanInEveryRegime) {
  Rng rng(GetParam());
  std::set<bounds::Regime> seen;

  // Family 1 — Alg. 1 on small P (Theorem 1 case 1: n1 <= n2 and
  // P <= n2/sqrt(n1(n1-1)), so n2 >= P·n1 pins the regime).
  for (int i = 0; i < 3; ++i) {
    const auto p = static_cast<int>(rng.uniform_int(2, 8));
    const auto n1 = static_cast<std::uint64_t>(rng.uniform_int(4, 10));
    const std::uint64_t n2 =
        static_cast<std::uint64_t>(p) * n1 *
        static_cast<std::uint64_t>(rng.uniform_int(1, 2));
    Matrix a = random_matrix(n1, n2, rng.uniform_int(1, 1 << 20));
    core::SyrkRequest req(a);
    req.use_1d();
    const AuditReport rep = run_and_audit(req, p, n1, n2);
    expect_clean(rep, "1d");
    seen.insert(rep.bound.regime);
  }

  // Family 2 — Alg. 2 on P = c(c+1), c prime (case 2 territory: n1 > n2).
  for (const std::uint64_t c : {2, 3, 5}) {
    const auto p = static_cast<int>(c * (c + 1));
    const std::uint64_t n1 =
        c * c * static_cast<std::uint64_t>(rng.uniform_int(2, 6));
    const std::uint64_t n2 =
        static_cast<std::uint64_t>(rng.uniform_int(2, 6));
    Matrix a = random_matrix(n1, n2, rng.uniform_int(1, 1 << 20));
    core::SyrkRequest req(a);
    req.use_2d(c);
    const AuditReport rep = run_and_audit(req, p, n1, n2);
    expect_clean(rep, "2d");
    seen.insert(rep.bound.regime);
  }

  // Family 3 — Alg. 3 on c(c+1) × p2 grids (case 3 territory: large P).
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t c = rng.uniform_int(0, 1) == 0 ? 2 : 3;
    const auto p2 = static_cast<std::uint64_t>(rng.uniform_int(2, 3));
    const auto p = static_cast<int>(c * (c + 1) * p2);
    const std::uint64_t n1 =
        c * c * static_cast<std::uint64_t>(rng.uniform_int(2, 5));
    const std::uint64_t n2 = p2 * static_cast<std::uint64_t>(
                                      rng.uniform_int(2, 6));
    Matrix a = random_matrix(n1, n2, rng.uniform_int(1, 1 << 20));
    core::SyrkRequest req(a);
    req.use_3d(c, p2);
    const AuditReport rep = run_and_audit(req, p, n1, n2);
    expect_clean(rep, "3d");
    seen.insert(rep.bound.regime);
  }

  // The sweep's shapes are chosen to exercise every Theorem 1 case.
  EXPECT_TRUE(seen.count(bounds::Regime::kOneD)) << "case 1 never hit";
  EXPECT_TRUE(seen.count(bounds::Regime::kTwoD)) << "case 2 never hit";
  EXPECT_TRUE(seen.count(bounds::Regime::kThreeD)) << "case 3 never hit";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditSweep, ::testing::Values(41, 42, 43));

TEST(TraceAudit, PlannerRequestsAuditClean) {
  // The §5.4 planner's own choices across a few shapes, trace included.
  const struct {
    std::size_t n1, n2;
    int procs;
  } cases[] = {{24, 48, 6}, {48, 8, 6}, {36, 24, 12}};
  for (const auto& cs : cases) {
    Matrix a = random_matrix(cs.n1, cs.n2, 3);
    core::SyrkRequest req(a);
    const AuditReport rep = run_and_audit(req, cs.procs, cs.n1, cs.n2);
    expect_clean(rep, "planner");
  }
}

TEST(TraceAudit, RootScatterIngestionIsModeled) {
  // from_root adds n1·n2·(1−1/P) scatter words; the auditor must fold that
  // into the modeled cost or every root request would flag kExceedsModel.
  Matrix a = random_matrix(16, 24, 5);
  core::SyrkRequest req(a);
  req.use_1d().from_root(0);
  const AuditReport rep = run_and_audit(req, 4, 16, 24);
  expect_clean(rep, "from_root");
  bool saw_scatter = false;
  for (const auto& ph : rep.phases) saw_scatter |= ph.phase == "scatter_A";
  EXPECT_TRUE(saw_scatter);
}

/// A real audited run to fabricate violations from.
core::SyrkRun baseline_run(core::Session& session, const Matrix& a) {
  return core::syrk(session, core::SyrkRequest(a).use_1d().with_trace());
}

TEST(TraceAudit, FlagsMeasuredBelowLowerBound) {
  Matrix a = random_matrix(16, 32, 7);
  core::Session session(4);
  core::SyrkRun run = baseline_run(session, a);
  // Pretend the busiest rank moved almost nothing: a ledger that misses
  // messages "beats" the proven lower bound, which is impossible for a
  // correct accounting.
  run.total.max.words_sent = 1;
  run.total.max.words_recv = 1;
  const AuditReport rep = BoundAuditor().audit(16, 32, run);
  EXPECT_EQ(rep.verdict, AuditVerdict::kBeatsLowerBound);
  EXPECT_FALSE(rep.ok());
  EXPECT_LT(rep.ratio_vs_bound, 1.0);
}

TEST(TraceAudit, FlagsMeasuredAboveModeledCost) {
  Matrix a = random_matrix(16, 32, 7);
  core::Session session(4);
  core::SyrkRun run = baseline_run(session, a);
  run.total.max.words_sent *= 10;  // schedule regression: 10x the traffic
  const AuditReport rep = BoundAuditor().audit(16, 32, run);
  EXPECT_EQ(rep.verdict, AuditVerdict::kExceedsModel);
  EXPECT_FALSE(rep.ok());
  EXPECT_GT(rep.ratio_vs_model, 1.0);
}

TEST(TraceAudit, FlagsTraceLedgerDisagreement) {
  Matrix a = random_matrix(16, 32, 7);
  core::Session session(4);
  core::SyrkRun run = baseline_run(session, a);
  ASSERT_TRUE(run.trace.has_value());
  const AuditReport clean = BoundAuditor().audit(16, 32, run, &*run.trace);
  EXPECT_TRUE(clean.trace_checked);
  EXPECT_TRUE(clean.trace_consistent);
  EXPECT_TRUE(clean.ok());

  run.trace->events.front().words += 1;  // one word the ledger never saw
  const AuditReport tampered =
      BoundAuditor().audit(16, 32, run, &*run.trace);
  EXPECT_TRUE(tampered.trace_checked);
  EXPECT_FALSE(tampered.trace_consistent);
  EXPECT_FALSE(tampered.ok());
}

TEST(TraceAudit, SlackOptionsWiden) {
  // Tight slack flags what default slack tolerates: rerun the below-bound
  // fabrication with bound_slack = 0 and a measured value just under the
  // bound.
  Matrix a = random_matrix(16, 32, 7);
  core::Session session(4);
  core::SyrkRun run = baseline_run(session, a);
  const auto just_under =
      static_cast<std::uint64_t>(run.bound.communicated * 0.97);
  run.total.max.words_sent = just_under;
  run.total.max.words_recv = just_under;
  trace::AuditOptions tight;
  tight.bound_slack = 0.0;
  EXPECT_EQ(BoundAuditor(tight).audit(16, 32, run).verdict,
            AuditVerdict::kBeatsLowerBound);
  trace::AuditOptions loose;
  loose.bound_slack = 0.10;
  EXPECT_EQ(BoundAuditor(loose).audit(16, 32, run).verdict,
            AuditVerdict::kOk);
}

}  // namespace
}  // namespace parsyrk
