// Tests for src/core: the 1D/2D/3D SYRK algorithms (correctness against the
// serial reference on shape/processor sweeps), measured communication versus
// the paper's closed-form algorithm costs and Theorem 1's lower bound, and
// the §5.4 planner.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <tuple>

#include "core/session.hpp"
#include "core/syrk.hpp"
#include "core/syrk_internal.hpp"
#include "costmodel/algorithm_costs.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"

namespace parsyrk::core {
namespace {

constexpr double kTol = 1e-10;

// ---------------------------------------------------------------------------
// 1D algorithm
// ---------------------------------------------------------------------------

class OneDShapes : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(OneDShapes, MatchesReference) {
  const auto [n1, n2, p] = GetParam();
  Matrix a = random_matrix(n1, n2, 101);
  Session session(p);
  const auto run = syrk(session, SyrkRequest(a).use_1d());
  Matrix ref = syrk_reference(a.view());
  EXPECT_LT(max_abs_diff(run.c.view(), ref.view()), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OneDShapes,
    ::testing::Values(std::make_tuple(8, 64, 4), std::make_tuple(16, 100, 7),
                      std::make_tuple(1, 50, 3), std::make_tuple(20, 20, 1),
                      std::make_tuple(13, 9, 5),   // n2 not divisible by P
                      std::make_tuple(5, 3, 8)));  // more ranks than columns

class OneDBruck : public ::testing::TestWithParam<int> {};

TEST_P(OneDBruck, DoublyOptimalReductionIsCorrect) {
  // §6: the Bruck-adapted Reduce-Scatter keeps the bandwidth optimum and
  // drops latency to ceil(log2 P); the 1D algorithm's result is unchanged.
  const int p = GetParam();
  const std::size_t n1 = 23, n2 = 64;  // packed triangle NOT divisible by p
  Matrix a = random_matrix(n1, n2, 111);
  Session session(p);
  const auto pairwise =
      syrk(session, SyrkRequest(a).use_1d().with_reduce(ReduceKind::kPairwise));
  const auto bruck =
      syrk(session, SyrkRequest(a).use_1d().with_reduce(ReduceKind::kBruck));
  EXPECT_LT(max_abs_diff(pairwise.c.view(), bruck.c.view()), kTol);
  if (p > 1) {
    EXPECT_EQ(bruck.total.max.msgs_sent,
              static_cast<std::uint64_t>(
                  std::ceil(std::log2(static_cast<double>(p)))));
    // Bandwidth within the padding slack of the pairwise volume.
    EXPECT_LE(bruck.total.max.words_sent, pairwise.total.max.words_sent + p);
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, OneDBruck, ::testing::Values(1, 2, 5, 8, 12));

TEST(OneD, CommunicationMatchesEq3) {
  // Eq. (3): each rank sends exactly (1 − 1/P)·n1(n1+1)/2 words in P−1
  // messages (packed-triangle Reduce-Scatter).
  const std::size_t n1 = 40, n2 = 640;
  const int p = 8;
  Matrix a = random_matrix(n1, n2, 102);
  Session session(p);
  syrk(session, SyrkRequest(a).use_1d());
  const auto expected = costmodel::syrk_1d_cost({n1, n2}, p);
  for (const auto& r : session.world().ledger().per_rank()) {
    EXPECT_NEAR(static_cast<double>(r.words_sent), expected.words, 1.0);
    EXPECT_EQ(static_cast<double>(r.msgs_sent), expected.messages);
  }
}

TEST(OneD, AttainsCase1BoundAsymptotically) {
  // In case 1 the bound on communicated words is ~n1(n1−1)/2·(1−1/P); the
  // algorithm moves n1(n1+1)/2·(1−1/P): optimal to leading order.
  const std::size_t n1 = 60, n2 = 14400;
  const int p = 4;
  Matrix a = random_matrix(n1, n2, 103);
  Session session(p);
  const auto run = syrk(session, SyrkRequest(a).use_1d());
  const auto bound = bounds::syrk_lower_bound(n1, n2, p);
  ASSERT_EQ(bound.regime, bounds::Regime::kOneD);
  const double measured =
      static_cast<double>(run.total.critical_path_words());
  EXPECT_GE(measured, bound.communicated * 0.999);
  EXPECT_LT(measured / bound.communicated, 1.10);  // (n1+1)/(n1-1) slack
}

// ---------------------------------------------------------------------------
// 2D algorithm
// ---------------------------------------------------------------------------

class TwoDShapes : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(TwoDShapes, MatchesReference) {
  const auto [n1, n2, c] = GetParam();
  Matrix a = random_matrix(n1, n2, 201);
  Session session(static_cast<int>(c * (c + 1)));
  const auto run = syrk(session, SyrkRequest(a).use_2d(c));
  Matrix ref = syrk_reference(a.view());
  EXPECT_LT(max_abs_diff(run.c.view(), ref.view()), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoDShapes,
    ::testing::Values(std::make_tuple(36, 8, 2),    // nb = 9
                      std::make_tuple(36, 5, 3),    // nb = 4
                      std::make_tuple(72, 16, 3),
                      std::make_tuple(100, 3, 5),   // nb = 4, skinny
                      std::make_tuple(49, 2, 7),    // nb = 1
                      std::make_tuple(8, 13, 2)));  // nb = 2, n2 > n1

TEST(TwoD, CommunicationNearEq10) {
  // Each rank exchanges c² chunks of w/P words (a few destinations get
  // empty messages), so measured words ≈ eq. (10)'s (1−1/P)·n1·n2/c.
  const std::size_t n1 = 108, n2 = 24;  // n1 % c² == 0 and (c+1) | nb·n2
  const std::uint64_t c = 3;
  Matrix a = random_matrix(n1, n2, 202);
  Session session(12);
  const auto run = syrk(session, SyrkRequest(a).use_2d(c));
  const auto& summary = run.total;
  const double eq10 = costmodel::syrk_2d_cost({n1, n2}, c).words;
  const double measured = static_cast<double>(summary.critical_path_words());
  // Exactly c² chunks of (n1·n2/c)/P words each:
  const double exact = static_cast<double>(c * c) *
                       (static_cast<double>(n1 * n2) / c / 12.0);
  EXPECT_NEAR(measured, exact, 1.0);
  EXPECT_LE(measured, eq10 + 1.0);
  // measured/eq10 = c²/(P−1): 9/11 here, approaching 1 as c grows.
  EXPECT_GT(measured, eq10 * 0.75);
  // Latency: the pairwise exchange posts P−1 messages per rank.
  EXPECT_EQ(summary.max.msgs_sent, 11u);
}

TEST(TwoD, AttainsCase2Bound) {
  // Tall-skinny problem in regime 2: measured / bound → (in the limit) 1.
  // With c = 5 (P = 30), the finite-P correction factors are ~(1 + 1/(2√P)).
  const std::size_t n1 = 600, n2 = 6;
  const std::uint64_t c = 5;
  Matrix a = random_matrix(n1, n2, 203);
  Session session(30);
  const auto run = syrk(session, SyrkRequest(a).use_2d(c));
  const auto bound = bounds::syrk_lower_bound(n1, n2, 30);
  ASSERT_EQ(bound.regime, bounds::Regime::kTwoD);
  const double measured =
      static_cast<double>(run.total.critical_path_words());
  const double ratio = measured / bound.communicated;
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.35);
}

TEST(TwoD, GatherPhaseIsAllTraffic) {
  // The 2D algorithm communicates only A; no reduce phase exists.
  const std::size_t n1 = 36, n2 = 10;
  Matrix a = random_matrix(n1, n2, 204);
  Session session(6);
  const auto run = syrk(session, SyrkRequest(a).use_2d(2));
  EXPECT_EQ(run.gather_a.total.words_sent, run.total.total.words_sent);
  EXPECT_GT(run.total.total.words_sent, 0u);
}

TEST(TwoD, RequiresMatchingSessionAndDivisibility) {
  Matrix a = random_matrix(36, 8, 205);
  Session small(5);  // c = 2 needs c(c+1) = 6 ranks
  EXPECT_THROW(syrk(small, SyrkRequest(a).use_2d(2)), InvalidArgument);
  Matrix bad = random_matrix(37, 8, 206);  // 37 % 4 != 0
  Session session(6);
  EXPECT_THROW(syrk(session, SyrkRequest(bad).use_2d(2)), InvalidArgument);
}

// ---------------------------------------------------------------------------
// 3D algorithm
// ---------------------------------------------------------------------------

class ThreeDShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::uint64_t, std::uint64_t>> {
};

TEST_P(ThreeDShapes, MatchesReference) {
  const auto [n1, n2, c, p2] = GetParam();
  Matrix a = random_matrix(n1, n2, 301);
  Session session(static_cast<int>(c * (c + 1) * p2));
  const auto run = syrk(session, SyrkRequest(a).use_3d(c, p2));
  Matrix ref = syrk_reference(a.view());
  EXPECT_LT(max_abs_diff(run.c.view(), ref.view()), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThreeDShapes,
    ::testing::Values(std::make_tuple(24, 12, 2, 3),   // the Fig. 3 grid
                      std::make_tuple(36, 30, 3, 2),
                      std::make_tuple(16, 40, 2, 4),
                      std::make_tuple(8, 7, 2, 5),     // n2 not divisible
                      std::make_tuple(36, 9, 2, 1),    // degenerate p2 = 1
                      std::make_tuple(50, 64, 5, 2)));

TEST(ThreeD, CommunicationNearEq12) {
  // §5.3.2: All-to-All of A within slices + Reduce-Scatter of C across
  // slices; both volumes must appear in the ledger under their phases.
  const std::size_t n1 = 48, n2 = 36;
  const std::uint64_t c = 2, p2 = 3;
  Matrix a = random_matrix(n1, n2, 302);
  Session session(18);
  const auto run = syrk(session, SyrkRequest(a).use_3d(c, p2));
  const auto& gather = run.gather_a;
  const auto& reduce = run.reduce_c;
  // Gather phase: c² chunks of (n1·(n2/p2)/c)/p1 words.
  const double slice_cols = static_cast<double>(n2) / p2;
  const double exact_gather =
      static_cast<double>(c * c) * (n1 * slice_cols / c / 6.0);
  EXPECT_NEAR(static_cast<double>(gather.max.words_sent), exact_gather, 2.0);
  // Reduce phase: (1 − 1/p2) of the per-k triangle block words.
  const double nb = static_cast<double>(n1) / (c * c);
  const double tri = (c * (c - 1) / 2.0) * nb * nb + nb * (nb + 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(reduce.max.words_sent),
              tri * (1.0 - 1.0 / p2), 2.0);
}

TEST(ThreeD, AttainsCase3BoundWithOptimalGrid) {
  // Square-ish problem, large P, §5.4 grid: measured within a modest factor
  // of (3/2)(n1(n1−1)n2/P)^{2/3} (finite-P corrections shrink as P grows).
  const std::size_t n1 = 120, n2 = 120;
  const std::uint64_t c = 2, p2 = 4;  // P = 24, p1 = 6 ≈ P^{2/3}·(n1/n2)^{2/3}
  Matrix a = random_matrix(n1, n2, 303);
  Session session(24);
  const auto run = syrk(session, SyrkRequest(a).use_3d(c, p2));
  const auto bound = bounds::syrk_lower_bound(n1, n2, 24);
  ASSERT_EQ(bound.regime, bounds::Regime::kThreeD);
  const double measured =
      static_cast<double>(run.total.critical_path_words());
  const double ratio = measured / bound.communicated;
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 2.0);
}

TEST(ThreeD, ReducesToTwoDWhenP2IsOne) {
  const std::size_t n1 = 36, n2 = 10;
  Matrix a = random_matrix(n1, n2, 304);
  Session session(6);
  const auto run3 = syrk(session, SyrkRequest(a).use_3d(2, 1));
  const auto run2 = syrk(session, SyrkRequest(a).use_2d(2));
  EXPECT_LT(max_abs_diff(run3.c.view(), run2.c.view()), kTol);
  EXPECT_EQ(run3.total.max.words_sent, run2.total.max.words_sent);
}

// ---------------------------------------------------------------------------
// Planner (§5.4)
// ---------------------------------------------------------------------------

TEST(Planner, ShortWideSmallPChoosesOneD) {
  const auto plan = plan_syrk(100, 100000, 8);
  EXPECT_EQ(plan.algorithm, Algorithm::kOneD);
  EXPECT_EQ(plan.regime, bounds::Regime::kOneD);
  EXPECT_EQ(plan.procs, 8u);
}

TEST(Planner, TallSkinnyChoosesTwoDWithPronicGrid) {
  const auto plan = plan_syrk(3600, 10, 35, /*n1_divisibility=*/true);
  EXPECT_EQ(plan.algorithm, Algorithm::kTwoD);
  EXPECT_EQ(plan.regime, bounds::Regime::kTwoD);
  // Largest prime c with c(c+1) <= 35 and c² | 3600: c = 5 (P = 30).
  EXPECT_EQ(plan.c, 5u);
  EXPECT_EQ(plan.procs, 30u);
}

TEST(Planner, DivisibilityConstraintChangesGrid) {
  // n1 = 63: 3² divides 63 but 5² and 2² do not. With divisibility enforced
  // the exact c = 3 grid wins (padded grids stay out of the race).
  const auto plan = plan_syrk(63, 2, 35, /*n1_divisibility=*/true);
  EXPECT_EQ(plan.algorithm, Algorithm::kTwoD);
  EXPECT_EQ(plan.c, 3u);
  EXPECT_EQ(plan.padded_n1, 0u);
  // Loosened, padded grids compete on modeled cost and the cheap c = 2 grid
  // (n1 padded 63 -> 64, only 6 ranks busy) beats every exact choice.
  const auto loose = plan_syrk(63, 2, 35, /*n1_divisibility=*/false);
  EXPECT_EQ(loose.c, 2u);
  EXPECT_EQ(loose.padded_n1, 64u);
  EXPECT_EQ(loose.procs, 6u);
}

TEST(Planner, LargePChoosesThreeD) {
  const auto plan = plan_syrk(120, 120, 24);
  EXPECT_EQ(plan.regime, bounds::Regime::kThreeD);
  EXPECT_EQ(plan.algorithm, Algorithm::kThreeD);
  EXPECT_EQ(plan.p1, plan.c * (plan.c + 1));
  EXPECT_EQ(plan.procs, plan.p1 * plan.p2);
  EXPECT_LE(plan.procs, 24u);
}

TEST(Planner, TinyWorldFoldsTwoDGrid) {
  // No pronic c(c+1) fits in P = 4, which used to strand this tall-skinny
  // problem on the 1D algorithm (≈25x the communication). Virtual-rank
  // folding runs the c = 2 grid's 6 logical ranks on the 4 physical ones.
  const auto plan = plan_syrk(1000, 2, 4);
  EXPECT_EQ(plan.algorithm, Algorithm::kTwoD);
  EXPECT_EQ(plan.c, 2u);
  EXPECT_EQ(plan.procs, 4u);
  EXPECT_TRUE(plan.folded());
  EXPECT_EQ(plan.logical_ranks(), 6u);
  EXPECT_EQ(plan.fold_factor(), 2u);
}

TEST(Planner, PlanPrints) {
  std::ostringstream os;
  os << plan_syrk(120, 120, 24);
  EXPECT_NE(os.str().find("3D"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Planner-path syrk end-to-end
// ---------------------------------------------------------------------------

class AutoShapes : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(AutoShapes, PlansRunsAndValidates) {
  const auto [n1, n2, p] = GetParam();
  Matrix a = random_matrix(n1, n2, 401);
  Session session(static_cast<int>(p));
  const auto run = syrk(session, SyrkRequest(a));
  Matrix ref = syrk_reference(a.view());
  EXPECT_LT(max_abs_diff(run.c.view(), ref.view()), kTol);
  EXPECT_LE(run.plan.procs, p);
  // Measured communication respects the lower bound at the plan's P.
  const auto bound = bounds::syrk_lower_bound(n1, n2, run.plan.procs);
  if (run.plan.procs > 1) {
    EXPECT_GE(static_cast<double>(run.total.critical_path_words()) * 1.001,
              bound.communicated * 0.999);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AutoShapes,
    ::testing::Values(std::make_tuple(24, 2000, 6),   // 1D regime
                      std::make_tuple(360, 4, 16),    // 2D regime
                      std::make_tuple(64, 64, 24),    // 3D regime
                      std::make_tuple(44, 44, 1),     // serial
                      std::make_tuple(9, 9, 50)));    // more ranks than work

TEST(Auto, PhaseSummariesAreConsistent) {
  Matrix a = random_matrix(48, 48, 402);
  Session session(18);
  const auto run = syrk(session, SyrkRequest(a));
  EXPECT_EQ(run.gather_a.total.words_sent + run.reduce_c.total.words_sent,
            run.total.total.words_sent);
}

TEST(Auto, RandomShapeFuzz) {
  // Random (n1, n2, P) triples through the planner: the plan must execute,
  // validate, and respect the lower bound at its processor count.
  Rng rng(31337);
  for (int trial = 0; trial < 25; ++trial) {
    const auto n1 = static_cast<std::size_t>(rng.uniform_int(2, 80));
    const auto n2 = static_cast<std::size_t>(rng.uniform_int(1, 120));
    const auto p = static_cast<std::uint64_t>(rng.uniform_int(1, 40));
    Matrix a = random_matrix(n1, n2, 500 + trial);
    Session session(static_cast<int>(p));
    const auto run = syrk(session, SyrkRequest(a));
    Matrix ref = syrk_reference(a.view());
    ASSERT_LT(max_abs_diff(run.c.view(), ref.view()), kTol)
        << "n1=" << n1 << " n2=" << n2 << " P=" << p << " plan=" << run.plan;
    ASSERT_LE(run.plan.procs, p);
    if (run.plan.procs > 1 && run.bound.communicated > 0) {
      ASSERT_GE(static_cast<double>(run.total.critical_path_words()) * 1.001,
                run.bound.communicated * 0.999)
          << "n1=" << n1 << " n2=" << n2 << " P=" << p;
    }
  }
}

class ButterflyShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(ButterflyShapes, MatchesPairwiseResult) {
  const auto [n1, n2, c] = GetParam();
  Matrix a = random_matrix(n1, n2, 550);
  Session session(static_cast<int>(c * (c + 1)));
  const auto pairwise = syrk(
      session, SyrkRequest(a).use_2d(c).with_exchange(ExchangeKind::kPairwise));
  const auto butterfly = syrk(
      session,
      SyrkRequest(a).use_2d(c).with_exchange(ExchangeKind::kButterfly));
  EXPECT_LT(max_abs_diff(pairwise.c.view(), butterfly.c.view()), kTol);
  // ceil(log2 P) messages.
  const double logp = std::ceil(
      std::log2(static_cast<double>(c * (c + 1))));
  EXPECT_EQ(butterfly.total.max.msgs_sent, static_cast<std::uint64_t>(logp));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ButterflyShapes,
    ::testing::Values(std::make_tuple(36, 6, 2),    // flat = 9·6 % 3 == 0
                      std::make_tuple(36, 8, 3),    // flat = 4·8 % 4 == 0
                      std::make_tuple(100, 12, 5),  // flat = 4·12 % 6 == 0
                      std::make_tuple(12, 9, 2)));  // flat = 3·9 % 3 == 0

// ---------------------------------------------------------------------------
// Internal pieces
// ---------------------------------------------------------------------------

TEST(Internals, ScatterPackedToFullCoversAllEntries) {
  // Split a packed triangle into uneven chunks and scatter; all entries of
  // the symmetric matrix must land.
  const std::size_t n = 7;
  const std::size_t total = n * (n + 1) / 2;
  std::vector<double> packed(total);
  for (std::size_t t = 0; t < total; ++t) packed[t] = 100.0 + t;
  Matrix full(n, n);
  std::size_t off = 0;
  for (std::size_t len : {3UL, 10UL, 1UL, 14UL}) {
    internal::PackedChunk chunk;
    chunk.offset = off;
    chunk.data.assign(packed.begin() + off, packed.begin() + off + len);
    internal::scatter_packed_to_full(chunk, full);
    off += len;
  }
  ASSERT_EQ(off, total);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double expect = 100.0 + i * (i + 1) / 2 + j;
      EXPECT_DOUBLE_EQ(full(i, j), expect);
      EXPECT_DOUBLE_EQ(full(j, i), expect);
    }
  }
}

TEST(Internals, FlattenedLayoutIsStable) {
  internal::TriangleBlocks b;
  b.pairs = {{1, 0}, {2, 0}};
  b.off_blocks = {Matrix(2, 2, 1.0), Matrix(2, 2, 2.0)};
  b.diag_index = 2;
  b.diag_block = Matrix(2, 2, 3.0);
  const auto flat = internal::flatten_triangle_blocks(b);
  ASSERT_EQ(flat.size(), 4u + 4u + 3u);
  EXPECT_DOUBLE_EQ(flat[0], 1.0);
  EXPECT_DOUBLE_EQ(flat[4], 2.0);
  EXPECT_DOUBLE_EQ(flat[8], 3.0);  // packed lower of the diagonal block
}

}  // namespace
}  // namespace parsyrk::core
