// Pipelined-execution equivalence suite.
//
// The with_pipeline(chunks) contract has two halves, both pinned here:
//   - chunks=1 replays the historical blocking schedule BITWISE: the binary
//     trace equals the committed golden byte for byte, and the ledger
//     summaries equal a blocking run's counter for counter;
//   - chunks>1 keeps the result matrix bitwise-identical and the word
//     volume exactly identical (message count scales with the chunk count),
//     records overlap intervals, and stays green under the BoundAuditor's
//     bound/model/trace-consistency checks.
//
// The last tests pin the nonblocking ledger-attribution rule: a
// posted-but-incomplete operation's sends land in the ledger at post time,
// under the posting phase — never in whatever snapshot window or phase is
// current when the handle completes.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "matrix/random.hpp"
#include "simmpi/comm.hpp"
#include "trace/audit.hpp"
#include "trace/export.hpp"

namespace parsyrk {
namespace {

struct PipelineConfig {
  const char* name;   // golden file stem (shared with test_trace_golden)
  int session_ranks;
  std::size_t n1, n2;
  std::uint64_t seed;
  void (*select)(core::SyrkRequest&);
};

const PipelineConfig kConfigs[] = {
    {"trace_1d", 6, 24, 48, 11,
     [](core::SyrkRequest& r) { r.use_1d(); }},
    {"trace_2d", 6, 16, 8, 12,
     [](core::SyrkRequest& r) { r.use_2d(2); }},
    {"trace_3d", 12, 24, 24, 13,
     [](core::SyrkRequest& r) { r.use_3d(2, 2); }},
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// One traced run of the config's problem; chunks=0 runs blocking.
core::SyrkRun run_config(const PipelineConfig& cfg, const Matrix& a,
                         int chunks) {
  core::Session session(cfg.session_ranks);
  core::SyrkRequest req(a);
  cfg.select(req);
  req.with_trace();
  if (chunks > 0) req.with_pipeline(chunks);
  return core::syrk(session, req);
}

void expect_counters_eq(const comm::Counters& got, const comm::Counters& want,
                        const char* what) {
  EXPECT_EQ(got.words_sent, want.words_sent) << what;
  EXPECT_EQ(got.words_recv, want.words_recv) << what;
  EXPECT_EQ(got.msgs_sent, want.msgs_sent) << what;
  EXPECT_EQ(got.msgs_recv, want.msgs_recv) << what;
}

class Pipeline : public ::testing::TestWithParam<PipelineConfig> {};

TEST_P(Pipeline, ChunksOneTraceMatchesCommittedGolden) {
  const PipelineConfig& cfg = GetParam();
  Matrix a = random_matrix(cfg.n1, cfg.n2, cfg.seed);
  const core::SyrkRun run = run_config(cfg, a, /*chunks=*/1);
  ASSERT_TRUE(run.trace.has_value());
  EXPECT_TRUE(run.trace->overlaps.empty())
      << "chunks=1 must not record overlap intervals";
  const std::string golden =
      read_file(std::string(PARSYRK_GOLDEN_DIR) + "/" + cfg.name + ".bin");
  ASSERT_FALSE(golden.empty()) << "missing golden for " << cfg.name;
  EXPECT_EQ(trace::to_binary(*run.trace), golden)
      << cfg.name
      << ": with_pipeline(1) must replay the blocking schedule bitwise";
}

TEST_P(Pipeline, ChunksOneLedgerAndResultMatchBlocking) {
  const PipelineConfig& cfg = GetParam();
  Matrix a = random_matrix(cfg.n1, cfg.n2, cfg.seed);
  const core::SyrkRun blocking = run_config(cfg, a, /*chunks=*/0);
  const core::SyrkRun piped = run_config(cfg, a, /*chunks=*/1);
  EXPECT_TRUE(piped.c == blocking.c) << cfg.name;
  expect_counters_eq(piped.total.total, blocking.total.total, "total.total");
  expect_counters_eq(piped.total.max, blocking.total.max, "total.max");
  expect_counters_eq(piped.gather_a.total, blocking.gather_a.total,
                     "gather_A");
  expect_counters_eq(piped.reduce_c.total, blocking.reduce_c.total,
                     "reduce_C");
}

TEST_P(Pipeline, ChunkedRunsAreBitwiseAndVolumeIdentical) {
  const PipelineConfig& cfg = GetParam();
  Matrix a = random_matrix(cfg.n1, cfg.n2, cfg.seed);
  const core::SyrkRun blocking = run_config(cfg, a, /*chunks=*/0);
  const trace::AuditReport blocking_audit = trace::BoundAuditor().audit(
      cfg.n1, cfg.n2, blocking, &*blocking.trace);
  for (int chunks : {2, 3, 7}) {
    SCOPED_TRACE(std::string(cfg.name) + " chunks=" +
                 std::to_string(chunks));
    const core::SyrkRun piped = run_config(cfg, a, chunks);
    // Results are BITWISE equal: segmentation preserves every entry's
    // accumulation order, so this is exact equality, not a tolerance.
    EXPECT_TRUE(piped.c == blocking.c);
    // Word volume identical; message count may only grow.
    EXPECT_EQ(piped.total.total.words_sent, blocking.total.total.words_sent);
    EXPECT_EQ(piped.total.total.words_recv, blocking.total.total.words_recv);
    EXPECT_GE(piped.total.total.msgs_sent, blocking.total.total.msgs_sent);
    EXPECT_EQ(piped.total.max.words_sent, blocking.total.max.words_sent);
    // The pipelined trace carries overlap intervals for the in-flight
    // windows (at least one rank has >= 2 segments at these chunk counts).
    ASSERT_TRUE(piped.trace.has_value());
    EXPECT_FALSE(piped.trace->overlaps.empty());
    for (const auto& o : piped.trace->overlaps) {
      EXPECT_LT(o.rank, static_cast<std::int32_t>(cfg.session_ranks));
      EXPECT_GE(o.complete_ordinal, o.post_ordinal);
      EXPECT_GT(o.words, 0u);
    }
    // Audits stay green: volume-identical schedules audit exactly like the
    // blocking one, and the trace rollup must still match the ledger.
    const trace::AuditReport audit =
        trace::BoundAuditor().audit(cfg.n1, cfg.n2, piped, &*piped.trace);
    EXPECT_EQ(audit.verdict, blocking_audit.verdict);
    EXPECT_TRUE(audit.trace_checked);
    EXPECT_TRUE(audit.trace_consistent);
    EXPECT_TRUE(audit.ok());
  }
}

TEST_P(Pipeline, ChunkedTraceRoundTripsThroughBinaryFormat) {
  const PipelineConfig& cfg = GetParam();
  Matrix a = random_matrix(cfg.n1, cfg.n2, cfg.seed);
  const core::SyrkRun piped = run_config(cfg, a, /*chunks=*/3);
  ASSERT_TRUE(piped.trace.has_value());
  const std::string bytes = trace::to_binary(*piped.trace);
  const comm::JobTrace parsed = trace::from_binary(bytes);
  EXPECT_EQ(parsed.events.size(), piped.trace->events.size());
  ASSERT_EQ(parsed.overlaps.size(), piped.trace->overlaps.size());
  for (std::size_t i = 0; i < parsed.overlaps.size(); ++i) {
    EXPECT_TRUE(parsed.overlaps[i] == piped.trace->overlaps[i]) << i;
  }
  // And the Chrome exporter emits the overlap lanes.
  const std::string json = trace::to_chrome_json(*piped.trace);
  EXPECT_NE(json.find("overlap"), std::string::npos);
  EXPECT_NE(json.find("in flight"), std::string::npos);
}

TEST_P(Pipeline, OversizedChunkCountClampsAndStaysBitwise) {
  // More chunks than the per-rank output range has items: the executor
  // clamps to the available segments (never an empty segment), and the run
  // remains bitwise- and volume-identical to blocking.
  const PipelineConfig& cfg = GetParam();
  Matrix a = random_matrix(cfg.n1, cfg.n2, cfg.seed);
  const core::SyrkRun blocking = run_config(cfg, a, /*chunks=*/0);
  const core::SyrkRun piped = run_config(cfg, a, /*chunks=*/1 << 20);
  EXPECT_TRUE(piped.c == blocking.c) << cfg.name;
  EXPECT_EQ(piped.total.total.words_sent, blocking.total.total.words_sent);
  EXPECT_EQ(piped.total.total.words_recv, blocking.total.total.words_recv);
  EXPECT_EQ(piped.total.max.words_sent, blocking.total.max.words_sent);
  // The clamp is finite: message count is bounded by one message per
  // available segment, nowhere near the requested 2^20.
  EXPECT_LT(piped.total.total.msgs_sent,
            blocking.total.total.msgs_sent + (1u << 20));
  const trace::AuditReport audit =
      trace::BoundAuditor().audit(cfg.n1, cfg.n2, piped, &*piped.trace);
  EXPECT_TRUE(audit.ok());
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, Pipeline, ::testing::ValuesIn(kConfigs),
    [](const ::testing::TestParamInfo<PipelineConfig>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------------
// with_pipeline argument validation (the chunks < 1 regression)
// ---------------------------------------------------------------------------

TEST(PipelineValidation, WithPipelineRejectsNonPositiveChunks) {
  Matrix a = random_matrix(8, 8, 1);
  core::SyrkRequest req(a);
  EXPECT_THROW(req.with_pipeline(0), InvalidArgument);
  EXPECT_THROW(req.with_pipeline(-3), InvalidArgument);
  EXPECT_NO_THROW(req.with_pipeline(1));
}

TEST(PipelineValidation, ExecutorRejectsDirectlySetNegativeChunks) {
  // The options struct is an open aggregate; a hand-assembled request can
  // bypass with_pipeline. pipeline_chunks < 0 has no meaning (0 = blocking,
  // >= 1 = pipelined) and must fail loudly, not execute as garbage.
  Matrix a = random_matrix(12, 8, 2);
  core::Session session(4);
  core::SyrkRequest req(a);
  req.use_1d();
  req.options.pipeline_chunks = -7;
  EXPECT_THROW(core::syrk(session, req), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Nonblocking ledger attribution (the snapshot-boundary regression)
// ---------------------------------------------------------------------------

TEST(NonblockingLedger, InFlightSendsAttributeToPostingSnapshotWindow) {
  // Ranks 0/1 post a reduce-scatter and then stall, handles incomplete,
  // while a concurrent observer takes a ledger snapshot — the service
  // layer's round boundary. The posted sends must already be in the ledger
  // (attributed to the posting job), so the post-snapshot window sees only
  // the receives that complete afterwards.
  comm::World world(4);
  std::atomic<int> posted{0};
  std::atomic<bool> snapped{false};
  comm::CostLedger::Snapshot mid;
  std::thread snapper([&] {
    while (posted.load() < 2) std::this_thread::yield();
    mid = world.ledger().snapshot();
    snapped.store(true);
  });
  world.run([&](comm::Comm& c) {
    comm::Comm sub = c.split(c.rank() < 2 ? 0 : 1, c.rank());
    if (c.rank() >= 2) return;  // ranks 2/3 idle: pins the rank-range scope
    c.set_phase("jobA");
    std::vector<double> data(100, 1.0 * c.rank());
    comm::Request req = sub.ireduce_scatter(data, {50, 50});
    posted.fetch_add(1);
    while (!snapped.load()) std::this_thread::yield();
    c.set_phase("jobB");  // the posting context must win over this
    req.wait();
  });
  snapper.join();

  // Post-snapshot window (rank range of the posting job): receives only.
  const comm::CostSummary after = world.ledger().summary_since(mid, 0, 2);
  EXPECT_EQ(after.total.words_sent, 0u)
      << "in-flight sends leaked into the next snapshot window";
  EXPECT_EQ(after.total.msgs_sent, 0u);
  EXPECT_EQ(after.total.words_recv, 100u);
  EXPECT_EQ(after.total.msgs_recv, 2u);

  // Idle ranks' range stays empty either way.
  const comm::CostSummary idle = world.ledger().summary_since(mid, 2, 4);
  EXPECT_EQ(idle.total.words_sent, 0u);
  EXPECT_EQ(idle.total.words_recv, 0u);

  // Phase attribution: everything the operation moved belongs to the phase
  // current at post time, nothing to the phase current at completion.
  const comm::CostSummary job_a = world.ledger().summary("jobA");
  EXPECT_EQ(job_a.total.words_sent, 100u);
  EXPECT_EQ(job_a.total.words_recv, 100u);
  const comm::CostSummary job_b = world.ledger().summary("jobB");
  EXPECT_EQ(job_b.total.words_sent, 0u);
  EXPECT_EQ(job_b.total.words_recv, 0u);
}

TEST(NonblockingLedger, PostedSendsVisibleBeforeFirstDrive) {
  // The eager-posting rule directly: handle creation records the first
  // round's sends even if the handle is never test()ed in between.
  comm::World world(2);
  world.run([&](comm::Comm& c) {
    c.set_phase("probe");
    std::vector<double> data(8, 1.0);
    comm::Request req = c.ireduce_scatter(data, {4, 4});
    // This rank's send is already in the ledger; its receive is not (only
    // this rank records its own receives, and it has not driven the handle).
    const auto per_rank = world.ledger().per_rank();
    EXPECT_EQ(per_rank[c.rank()].words_sent, 4u);
    EXPECT_EQ(per_rank[c.rank()].msgs_sent, 1u);
    EXPECT_EQ(per_rank[c.rank()].words_recv, 0u);
    req.wait();
  });
  const comm::CostSummary done = world.ledger().summary("probe");
  EXPECT_EQ(done.total.words_recv, 8u);
}

}  // namespace
}  // namespace parsyrk
