// Tests for core/planner.hpp: the cost-model-driven plan enumerator, its
// selection rule (argmin with a zero-idle preference), padding fallback,
// virtual-rank folding, and the plan-report surfaces (Session /
// resolve_plan_report / explain).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "core/planner.hpp"
#include "core/session.hpp"
#include "core/syrk.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/rng.hpp"
#include "trace/audit.hpp"

namespace parsyrk::core {
namespace {

constexpr double kTol = 1e-10;

// Structural invariants every candidate of every report must satisfy.
void check_report_invariants(const PlanReport& report) {
  ASSERT_FALSE(report.candidates.empty());
  const double slack = 1.0 + report.options.utilization_slack;
  EXPECT_LE(report.chosen_vs_best(), slack + 1e-12);
  EXPECT_TRUE(report.chosen().chosen);
  bool saw_one_d = false;
  double prev_score = 0.0;
  for (const auto& cand : report.candidates) {
    const Plan& plan = cand.plan;
    EXPECT_LE(plan.procs, report.max_procs);
    EXPECT_GE(cand.score, prev_score);  // ascending ranking
    prev_score = cand.score;
    EXPECT_EQ(cand.idle_ranks, report.max_procs - plan.procs);
    switch (plan.algorithm) {
      case Algorithm::kOneD:
        saw_one_d = true;
        EXPECT_EQ(plan.procs, report.max_procs);
        EXPECT_FALSE(plan.folded());
        EXPECT_EQ(plan.padded_n1, 0u);
        break;
      case Algorithm::kTwoD:
      case Algorithm::kThreeD: {
        EXPECT_EQ(plan.p1, plan.c * (plan.c + 1));
        EXPECT_EQ(plan.logical_ranks(), plan.p1 * plan.p2);
        EXPECT_LE(plan.p2, report.n2);
        EXPECT_LE(plan.fold_factor(), report.options.max_fold);
        const std::uint64_t exec = plan.exec_n1(report.n1);
        EXPECT_GE(exec, report.n1);
        EXPECT_EQ(exec % (plan.c * plan.c), 0u);
        if (plan.folded()) {
          EXPECT_EQ(plan.procs, report.max_procs);
          EXPECT_GT(plan.logical, report.max_procs);
        }
        break;
      }
    }
  }
  EXPECT_TRUE(saw_one_d);  // the 1D-at-P baseline is always enumerated
}

// ---------------------------------------------------------------------------
// Enumeration invariants
// ---------------------------------------------------------------------------

TEST(PlanEnumeration, RandomizedPropertySweep) {
  Rng rng(20230607);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n1 = static_cast<std::uint64_t>(rng.uniform_int(2, 500));
    const auto n2 = static_cast<std::uint64_t>(rng.uniform_int(1, 500));
    const auto p = static_cast<std::uint64_t>(rng.uniform_int(1, 300));
    PlanSearchOptions opts;
    opts.n1_divisibility = trial % 2 == 0;
    const auto report = enumerate_syrk_plans(n1, n2, p, opts);
    check_report_invariants(report);
    // plan_syrk is exactly the report's chosen plan.
    if (opts.n1_divisibility) {
      const auto plan = plan_syrk(n1, n2, p);
      EXPECT_EQ(plan.procs, report.plan().procs) << n1 << "x" << n2 << " P=" << p;
      EXPECT_EQ(plan.c, report.plan().c);
      EXPECT_EQ(plan.p2, report.plan().p2);
    }
  }
}

TEST(PlanEnumeration, AcceptanceSweepAcrossAspectRatios) {
  // The PR's acceptance criterion: every P in 1..512 across wide, square,
  // and tall aspect ratios yields procs <= P, a bounded fold, and a chosen
  // plan within the utilization slack of the best enumerated.
  const struct {
    std::uint64_t n1, n2;
  } shapes[] = {{64, 4096}, {720, 720}, {3600, 16}};
  for (const auto& s : shapes) {
    for (std::uint64_t p = 1; p <= 512; ++p) {
      const auto report = enumerate_syrk_plans(s.n1, s.n2, p);
      const Plan plan = report.plan();
      ASSERT_LE(plan.procs, p) << s.n1 << "x" << s.n2 << " P=" << p;
      ASSERT_LE(plan.fold_factor(), 4u);
      ASSERT_LE(report.chosen_vs_best(), 1.10 + 1e-12);
    }
  }
}

TEST(PlanEnumeration, TallSkinnyNeverOverAllocates) {
  // Regression for the greedy planner's 3D over-allocation: a tall-skinny
  // problem in the 3D regime must never occupy more than max_procs physical
  // ranks (the old code could pick c(c+1)·p2 > P).
  for (std::uint64_t p = 1; p <= 64; ++p) {
    const auto plan = plan_syrk(4096, 8, p);
    EXPECT_LE(plan.procs, p) << "P = " << p;
    EXPECT_LE(plan.logical_ranks(), 4 * p);  // fold capped at 4
  }
}

TEST(PlanEnumeration, ChoosesCheaperGridOverGreedyOneD) {
  // (24, 48, 12): n1 <= n2 and P <= n2 made the old planner pick 1D, but
  // the c = 2 grid moves about half the words. The enumerator must rank the
  // grid above the 1D baseline on modeled cost.
  const auto report = enumerate_syrk_plans(24, 48, 12);
  const Plan plan = report.plan();
  EXPECT_EQ(plan.algorithm, Algorithm::kTwoD);
  EXPECT_EQ(plan.c, 2u);
  const PlanCandidate* one_d = nullptr;
  for (const auto& cand : report.candidates) {
    if (cand.plan.algorithm == Algorithm::kOneD) one_d = &cand;
  }
  ASSERT_NE(one_d, nullptr);
  EXPECT_LT(report.chosen().score, one_d->score);
}

TEST(PlanEnumeration, ZeroIdlePreferenceFillsTheMachine) {
  // (120, 120, 24): the strict argmin (c = 2, p2 = 3, 18 ranks) leaves 6
  // ranks idle; p2 = 4 occupies all 24 at a ~5% modeled-cost premium —
  // inside the 10% utilization slack, so it wins.
  const auto report = enumerate_syrk_plans(120, 120, 24);
  const Plan plan = report.plan();
  EXPECT_EQ(plan.algorithm, Algorithm::kThreeD);
  EXPECT_EQ(plan.procs, 24u);
  EXPECT_EQ(report.chosen().idle_ranks, 0u);
  EXPECT_GT(report.chosen_index, 0u);  // displaced a cheaper-but-idle argmin
  EXPECT_LE(report.chosen_vs_best(), 1.10 + 1e-12);
}

TEST(PlanEnumeration, PaddingFallbackBeatsSilentOneDDrop) {
  // n1 = 7 divides no usable c², so the old planner silently dropped to 1D.
  // The enumerator pads to 8 rows and keeps the cheaper c = 2 grid, even
  // with the divisibility preference on (no exact grid exists to prefer).
  const auto plan = plan_syrk(7, 1, 10, /*n1_divisibility=*/true);
  EXPECT_EQ(plan.algorithm, Algorithm::kTwoD);
  EXPECT_EQ(plan.c, 2u);
  EXPECT_EQ(plan.padded_n1, 8u);
  EXPECT_EQ(plan.exec_n1(7), 8u);
}

TEST(PlanEnumeration, FoldingDisabledFallsBackToUnfolded) {
  PlanSearchOptions opts;
  opts.allow_folding = false;
  const auto report = enumerate_syrk_plans(1000, 2, 4, opts);
  for (const auto& cand : report.candidates) {
    EXPECT_FALSE(cand.plan.folded());
    EXPECT_LE(cand.plan.procs, 4u);
  }
  // Without folding no pronic fits in P = 4: 1D is the only choice.
  EXPECT_EQ(report.plan().algorithm, Algorithm::kOneD);
}

TEST(PlanEnumeration, ExplainPrintsRankedTable) {
  const auto report = enumerate_syrk_plans(120, 120, 24);
  std::ostringstream os;
  report.explain(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("SYRK plan search"), std::string::npos);
  EXPECT_NE(out.find("->"), std::string::npos);  // chosen marker
  EXPECT_NE(out.find("score(s)"), std::string::npos);
  EXPECT_NE(out.find("chosen/best modeled-cost ratio"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Folded and padded execution end-to-end
// ---------------------------------------------------------------------------

TEST(FoldedExecution, ValidatesAndKeepsEveryPhysicalRankBusy) {
  // (1000, 2) on 4 physical ranks folds the 6-rank c = 2 grid. The result
  // must be exact, the plan folded, and — the whole point of folding over
  // an active-ranks subset — every physical rank must carry traffic.
  Matrix a = random_matrix(1000, 2, 71);
  Session session(4);
  auto run = syrk(session, SyrkRequest(a));
  ASSERT_TRUE(run.plan.folded());
  EXPECT_EQ(run.plan.procs, 4u);
  EXPECT_EQ(run.plan.logical_ranks(), 6u);
  EXPECT_LT(max_abs_diff(run.c.view(), syrk_reference(a.view()).view()), kTol);
  // Summaries are folded to physical ranks.
  EXPECT_EQ(run.total.ranks, 4u);
  // Fold the logical per-rank ledger onto the 4 physical hosts by hand.
  const auto per_logical = session.world_for(run.plan).ledger().per_rank();
  ASSERT_EQ(per_logical.size(), 6u);
  std::vector<std::uint64_t> per_physical(4, 0);
  for (std::size_t r = 0; r < per_logical.size(); ++r) {
    per_physical[r % 4] += per_logical[r].words_sent;
  }
  for (std::size_t r = 0; r < per_physical.size(); ++r) {
    EXPECT_GT(per_physical[r], 0u) << "physical rank " << r << " idle";
  }
  // Folded runs still satisfy Theorem 1 at the physical processor count (a
  // folded execution IS an execution on 4 processors; co-located transfers
  // are intra-processor and rightly uncounted).
  const double measured = static_cast<double>(run.total.critical_path_words());
  EXPECT_GE(measured * 1.001, run.bound.communicated * 0.999);
}

TEST(FoldedExecution, RepeatedRequestsReuseTheFoldedWorld) {
  Matrix a = random_matrix(200, 2, 72);
  Session session(4);
  const auto run1 = syrk(session, SyrkRequest(a));
  const auto run2 = syrk(session, SyrkRequest(a));
  ASSERT_TRUE(run1.plan.folded());
  // Same folded world, so request-scoped summaries are identical.
  EXPECT_EQ(run1.total.max.words_sent, run2.total.max.words_sent);
  EXPECT_EQ(run1.total.total.words_sent, run2.total.total.words_sent);
  EXPECT_EQ(session.world_for(run1.plan).jobs_run(), 2u);
}

TEST(PaddedExecution, TruncatesBackToExactResult) {
  Matrix a = random_matrix(7, 1, 73);
  Session session(10);
  auto run = syrk(session, SyrkRequest(a));
  ASSERT_EQ(run.plan.padded_n1, 8u);
  ASSERT_EQ(run.c.rows(), 7u);
  ASSERT_EQ(run.c.cols(), 7u);
  EXPECT_LT(max_abs_diff(run.c.view(), syrk_reference(a.view()).view()), kTol);
}

TEST(FoldedExecution, AuditAcceptsFoldedAndPaddedRuns) {
  trace::BoundAuditor auditor;
  {
    Matrix a = random_matrix(1000, 2, 74);
    Session session(4);
    auto run = syrk(session, SyrkRequest(a).with_trace());
    ASSERT_TRUE(run.plan.folded());
    ASSERT_TRUE(run.trace.has_value());
    EXPECT_EQ(run.trace->physical_ranks, 4u);
    const auto rep = auditor.audit(1000, 2, run, &run.trace.value());
    EXPECT_TRUE(rep.ok()) << trace::audit_verdict_name(rep.verdict);
  }
  {
    Matrix a = random_matrix(7, 1, 75);
    Session session(10);
    auto run = syrk(session, SyrkRequest(a).with_trace());
    ASSERT_EQ(run.plan.padded_n1, 8u);
    const auto rep = auditor.audit(7, 1, run, &run.trace.value());
    EXPECT_TRUE(rep.ok()) << trace::audit_verdict_name(rep.verdict);
  }
}

// ---------------------------------------------------------------------------
// Report surfaces
// ---------------------------------------------------------------------------

TEST(PlanReportSurface, ResolveReportMatchesResolvePlan) {
  Matrix a = random_matrix(120, 120, 76);
  Session session(24);
  {
    SyrkRequest req(a);
    const auto report = resolve_plan_report(session, req);
    const auto plan = resolve_plan(session, req);
    EXPECT_EQ(report.plan().procs, plan.procs);
    EXPECT_EQ(report.plan().c, plan.c);
    EXPECT_EQ(report.plan().p2, plan.p2);
    EXPECT_GT(report.candidates.size(), 1u);
  }
  {
    SyrkRequest req(a);
    req.use_2d(2);
    const auto report = resolve_plan_report(session, req);
    ASSERT_EQ(report.candidates.size(), 1u);  // no search ran
    EXPECT_EQ(report.plan().algorithm, Algorithm::kTwoD);
    EXPECT_EQ(report.plan().c, 2u);
    EXPECT_EQ(report.chosen().note, "explicitly requested");
    EXPECT_GT(report.chosen().score, 0.0);
  }
}

}  // namespace
}  // namespace parsyrk::core
