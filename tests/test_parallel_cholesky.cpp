// Tests for the distributed tile Cholesky (core/cholesky.hpp) — SYRK's
// host computation running end-to-end on the runtime.
#include <gtest/gtest.h>

#include <tuple>

#include "core/cholesky.hpp"
#include "matrix/factor.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/check.hpp"

namespace parsyrk::core {
namespace {

Matrix spd(std::size_t n, std::uint64_t seed) {
  Matrix g = syrk_reference(random_matrix(n, n + 4, seed).view());
  for (std::size_t i = 0; i < n; ++i) g(i, i) += static_cast<double>(n);
  return g;
}

class CholGrids
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(CholGrids, MatchesSerialFactor) {
  const auto [n, tile, r] = GetParam();
  Matrix g = spd(n, 901);
  comm::World world(static_cast<int>(r * r));
  Matrix l = parallel_cholesky(world, g, r, tile);
  Matrix ref = cholesky_lower(g.view());
  EXPECT_LT(max_abs_diff(l.view(), ref.view()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CholGrids,
    ::testing::Values(std::make_tuple(40, 5, 2),   // even tiling
                      std::make_tuple(48, 8, 3),
                      std::make_tuple(45, 7, 2),   // ragged last tile
                      std::make_tuple(30, 30, 2),  // single tile
                      std::make_tuple(24, 2, 4),   // many small tiles
                      std::make_tuple(36, 6, 1),   // serial grid
                      std::make_tuple(10, 16, 3)));  // tile > n

TEST(ParallelCholesky, ReconstructsInput) {
  const std::size_t n = 60;
  Matrix g = spd(n, 902);
  comm::World world(9);
  Matrix l = parallel_cholesky(world, g, 3, 10);
  Matrix recon(n, n);
  gemm_nt(l.view(), l.view(), recon.view());
  EXPECT_LT(max_abs_diff_lower(recon.view(), g.view()), 1e-8);
}

TEST(ParallelCholesky, StrictUpperIsZero) {
  Matrix g = spd(20, 903);
  comm::World world(4);
  Matrix l = parallel_cholesky(world, g, 2, 4);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = i + 1; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(l(i, j), 0.0);
    }
  }
}

TEST(ParallelCholesky, CommunicatesPanelsAndDiagonals) {
  Matrix g = spd(48, 904);
  comm::World world(4);
  parallel_cholesky(world, g, 2, 8);
  const auto diag = world.ledger().summary("bcast_diag");
  const auto panel = world.ledger().summary("bcast_panel");
  EXPECT_GT(diag.total.words_sent, 0u);
  EXPECT_GT(panel.total.words_sent, 0u);
  // Panels dominate: they carry O(n²/r) words per step vs O(b²) diagonals.
  EXPECT_GT(panel.total.words_sent, diag.total.words_sent);
}

TEST(ParallelCholesky, SerialGridMovesNothing) {
  Matrix g = spd(24, 905);
  comm::World world(1);
  Matrix l = parallel_cholesky(world, g, 1, 6);
  EXPECT_EQ(world.ledger().summary().total.words_sent, 0u);
  EXPECT_LT(max_abs_diff(l.view(), cholesky_lower(g.view()).view()), 1e-10);
}

TEST(ParallelCholesky, RejectsIndefinite) {
  Matrix g = Matrix::from_rows({{1, 0, 2}, {0, 1, 0}, {2, 0, 1}});
  comm::World world(4);
  EXPECT_THROW(parallel_cholesky(world, g, 2, 1), InvalidArgument);
}

TEST(ParallelCholesky, RejectsWrongWorldSize) {
  Matrix g = spd(8, 906);
  comm::World world(5);
  EXPECT_THROW(parallel_cholesky(world, g, 2, 2), InvalidArgument);
}

}  // namespace
}  // namespace parsyrk::core
