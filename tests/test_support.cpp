// Tests for src/support: primes, formatting, RNG determinism.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/check.hpp"
#include "support/prime.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace parsyrk {
namespace {

TEST(Prime, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
}

TEST(Prime, AgreesWithSieve) {
  const auto sieve = primes_up_to(2000);
  std::set<std::uint64_t> prime_set(sieve.begin(), sieve.end());
  for (std::uint64_t n = 0; n <= 2000; ++n) {
    EXPECT_EQ(is_prime(n), prime_set.count(n) == 1) << "n = " << n;
  }
}

TEST(Prime, NextPrime) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(90), 97u);
}

TEST(Prime, PrevPrime) {
  EXPECT_FALSE(prev_prime(1).has_value());
  EXPECT_EQ(prev_prime(2).value(), 2u);
  EXPECT_EQ(prev_prime(10).value(), 7u);
  EXPECT_EQ(prev_prime(100).value(), 97u);
}

TEST(Prime, AsPrimePronic) {
  EXPECT_EQ(as_prime_pronic(6).value(), 2u);     // 2*3
  EXPECT_EQ(as_prime_pronic(12).value(), 3u);    // 3*4
  EXPECT_EQ(as_prime_pronic(30).value(), 5u);    // 5*6
  EXPECT_EQ(as_prime_pronic(56).value(), 7u);    // 7*8
  EXPECT_EQ(as_prime_pronic(132).value(), 11u);  // 11*12
  EXPECT_FALSE(as_prime_pronic(20).has_value());  // 4*5, c = 4 not prime
  EXPECT_FALSE(as_prime_pronic(72).has_value());  // 8*9, c = 8 not prime
  EXPECT_FALSE(as_prime_pronic(7).has_value());   // not pronic at all
  EXPECT_FALSE(as_prime_pronic(0).has_value());
}

TEST(Prime, LargestPrimePronicAtMost) {
  EXPECT_FALSE(largest_prime_pronic_at_most(5).has_value());
  EXPECT_EQ(largest_prime_pronic_at_most(6).value(), 6u);
  EXPECT_EQ(largest_prime_pronic_at_most(11).value(), 6u);
  EXPECT_EQ(largest_prime_pronic_at_most(12).value(), 12u);
  EXPECT_EQ(largest_prime_pronic_at_most(55).value(), 30u);
  EXPECT_EQ(largest_prime_pronic_at_most(131).value(), 56u);
  EXPECT_EQ(largest_prime_pronic_at_most(1000).value(), 31u * 32u);
}

TEST(Prime, IsqrtExact) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(2), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  for (std::uint64_t r = 1; r <= 2000; ++r) {
    EXPECT_EQ(isqrt(r * r), r);
    EXPECT_EQ(isqrt(r * r - 1), r - 1);
    EXPECT_EQ(isqrt(r * r + 1), r);
  }
}

TEST(Prime, IsqrtBeyondDoublePrecision) {
  // Above 2^53 a double cannot represent every integer, so std::sqrt-based
  // recovery can be off by one around perfect squares. Newton's method in
  // integer arithmetic must stay exact all the way to 2^64 - 1.
  const std::uint64_t roots[] = {(1ull << 26) + 1, (1ull << 31) - 1,
                                 (1ull << 32) - 1, 3037000499ull};
  for (const std::uint64_t r : roots) {
    EXPECT_EQ(isqrt(r * r), r);
    EXPECT_EQ(isqrt(r * r - 1), r - 1);
    EXPECT_EQ(isqrt(r * r + 1), r);
  }
  EXPECT_EQ(isqrt(~0ull), (1ull << 32) - 1);  // floor(sqrt(2^64 - 1))
}

TEST(Prime, PronicRecoveryAtLargeValues) {
  // c = 2^31 - 1 (a Mersenne prime); p = c(c+1) ≈ 4.6e18 is near the top of
  // the uint64 range, where the old sqrt(4p+1) recovery both overflowed
  // (4p + 1 > 2^64) and lost precision. The pronic boundary must be exact:
  // p itself recovers c, p ± 1 do not.
  const std::uint64_t c = 2147483647ull;
  const std::uint64_t p = c * (c + 1);
  EXPECT_EQ(as_prime_pronic(p).value(), c);
  EXPECT_FALSE(as_prime_pronic(p - 1).has_value());
  EXPECT_FALSE(as_prime_pronic(p + 1).has_value());
  EXPECT_EQ(largest_prime_pronic_at_most(p).value(), p);
  EXPECT_EQ(largest_prime_pronic_at_most(p - 1).value(),
            2147483629ull * 2147483630ull);  // next prime below 2^31 - 1
  EXPECT_EQ(largest_prime_pronic_at_most(p + 12345).value(), p);
}

TEST(Prime, PrimesUpTo) {
  EXPECT_TRUE(primes_up_to(1).empty());
  EXPECT_EQ(primes_up_to(10), (std::vector<std::uint64_t>{2, 3, 5, 7}));
  EXPECT_EQ(primes_up_to(29).back(), 29u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(Rng, NormalMomentsRoughly) {
  Rng rng(123);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Table, AlignedOutput) {
  Table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| a   | bbbb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, FmtCount) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(fmt_double(1.5), "1.5");
  EXPECT_EQ(fmt_double(0.333333333, 3), "0.333");
}

TEST(Check, RequireThrows) {
  EXPECT_THROW({ PARSYRK_REQUIRE(false, "message ", 42); }, InvalidArgument);
}

TEST(Check, StrcatAll) {
  EXPECT_EQ(strcat_all("x=", 3, ", y=", 1.5), "x=3, y=1.5");
}

}  // namespace
}  // namespace parsyrk
