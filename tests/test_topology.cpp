// Two-level topology suite: World topology API, tiered ledger accounting,
// hierarchical collectives, and the end-to-end session/audit plumbing.
//
// The tentpole invariants pinned here:
//   - a topology'd world prices intra-node words on the cheap tier and
//     inter-node words on the scarce tier; the ordinary (flat) counters are
//     UNCHANGED, so a topology'd pairwise run replays the flat schedule
//     byte for byte (the goldens never fork);
//   - the hierarchical collectives compute the same answer as the flat ones
//     (exactly, on integer-valued inputs — summation order differs);
//   - the busiest node's inter volume matches the closed forms: pairwise
//     tier-split R·T·(P−R)/P, hierarchical leader exchange T·(1−1/N);
//   - the BoundAuditor audits the inter-node volume against Theorem 1
//     re-instantiated at P = #nodes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "core/session.hpp"
#include "matrix/kernels.hpp"
#include "simmpi/comm.hpp"
#include "support/check.hpp"
#include "trace/audit.hpp"
#include "trace/export.hpp"

namespace parsyrk {
namespace {

/// Integer-valued test matrix: double sums of small integers are exact
/// regardless of association, so hierarchical and flat schedules (which sum
/// in different orders) must agree bitwise.
Matrix integer_matrix(std::size_t n1, std::size_t n2) {
  Matrix a(n1, n2);
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t j = 0; j < n2; ++j) {
      a(i, j) = static_cast<double>((i * 7 + j * 3) % 5) - 2.0;
    }
  }
  return a;
}

// ---------------------------------------------------------------------------
// World topology API
// ---------------------------------------------------------------------------

TEST(WorldTopology, SetTopologyValidatesAndMapsNodes) {
  comm::World w(6);
  EXPECT_THROW(w.set_topology(0), InvalidArgument);
  EXPECT_THROW(w.set_topology(4), InvalidArgument);  // 6 % 4 != 0
  w.set_topology(3);
  EXPECT_EQ(w.ranks_per_node(), 3);
  EXPECT_EQ(w.nodes(), 2);
  EXPECT_EQ(w.node_of(0), 0);
  EXPECT_EQ(w.node_of(2), 0);
  EXPECT_EQ(w.node_of(3), 1);
  EXPECT_EQ(w.tier_between(0, 2), comm::Tier::kIntra);
  EXPECT_EQ(w.tier_between(2, 3), comm::Tier::kInter);
  // rpn = 1 restores the flat machine.
  w.set_topology(1);
  EXPECT_EQ(w.nodes(), 6);
}

TEST(WorldTopology, FoldedWorldsRejectTopology) {
  // Folding already models co-location; stacking a node topology on top
  // would double-count it.
  comm::World folded(8, 4);
  EXPECT_THROW(folded.set_topology(2), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Tiered ledger accounting
// ---------------------------------------------------------------------------

TEST(LedgerTiers, InterSummaryCountsOnlyCrossNodeWords) {
  // All-to-all of one word per destination on 4 ranks, 2 per node: each
  // rank sends 3 words total, of which 2 cross the node boundary. Per node
  // (2 ranks), inter words = 4; ordinary counters see all 12.
  comm::World w(4);
  w.set_topology(2);
  w.run([](comm::Comm& c) {
    std::vector<std::vector<double>> send(4);
    for (int d = 0; d < 4; ++d) {
      if (d != c.rank()) send[d] = {static_cast<double>(c.rank())};
    }
    auto got = c.all_to_all_v(send);
    for (int s = 0; s < 4; ++s) {
      if (s == c.rank()) continue;
      ASSERT_EQ(got[s].size(), 1u);
      EXPECT_EQ(got[s][0], static_cast<double>(s));
    }
  });
  const comm::CostSummary flat = w.ledger().summary();
  EXPECT_EQ(flat.total.words_sent, 12u);
  const comm::CostSummary inter = w.ledger().inter_summary();
  EXPECT_EQ(inter.total.words_sent, 8u);   // 2 cross words per rank
  EXPECT_EQ(inter.max.words_sent, 4u);     // busiest NODE, not rank
}

TEST(LedgerTiers, FlatWorldRecordsIdenticallyWithAndWithoutTopologyReset) {
  // Stamping rpn=1 must be a no-op on the ordinary counters.
  auto run = [](bool stamp) {
    comm::World w(4);
    if (stamp) w.set_topology(1);
    w.run([](comm::Comm& c) {
      std::vector<double> data(8, static_cast<double>(c.rank()));
      c.reduce_scatter(data, {2, 2, 2, 2});
    });
    return w.ledger().summary();
  };
  const comm::CostSummary a = run(false);
  const comm::CostSummary b = run(true);
  EXPECT_TRUE(a.total == b.total);
  EXPECT_TRUE(a.max == b.max);
}

// ---------------------------------------------------------------------------
// Hierarchical collectives
// ---------------------------------------------------------------------------

TEST(HierCollectives, ReduceScatterHierMatchesFlatExactly) {
  comm::World w(4);
  w.set_topology(2);
  w.run([](comm::Comm& c) {
    std::vector<double> data(8);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<double>((c.rank() * 11 + i * 3) % 7) - 3.0;
    }
    const std::vector<std::size_t> sizes = {2, 2, 2, 2};
    ASSERT_TRUE(c.hier_available());
    const std::vector<double> hier = c.reduce_scatter_hier(data, sizes);
    const std::vector<double> flat = c.reduce_scatter(data, sizes);
    ASSERT_EQ(hier.size(), flat.size());
    for (std::size_t i = 0; i < hier.size(); ++i) {
      EXPECT_EQ(hier[i], flat[i]) << "rank " << c.rank() << " elem " << i;
    }
  });
}

TEST(HierCollectives, AllToAllVHierMatchesFlatWithRaggedBlocks) {
  comm::World w(6);
  w.set_topology(3);
  w.run([](comm::Comm& c) {
    // Ragged, some destinations empty — exercises the frame encoding.
    std::vector<std::vector<double>> send(6);
    for (int d = 0; d < 6; ++d) {
      const int len = (c.rank() + d) % 3;  // 0, 1, or 2 words
      for (int k = 0; k < len; ++k) {
        send[d].push_back(static_cast<double>(c.rank() * 100 + d * 10 + k));
      }
    }
    ASSERT_TRUE(c.hier_available());
    const auto hier = c.all_to_all_v_hier(send);
    const auto flat = c.all_to_all_v(send);
    ASSERT_EQ(hier.size(), flat.size());
    for (std::size_t s = 0; s < hier.size(); ++s) {
      EXPECT_EQ(hier[s], flat[s]) << "rank " << c.rank() << " from " << s;
    }
  });
}

TEST(HierCollectives, UnavailableTopologyFallsBackToFlat) {
  // Flat world: hier_available is false and the hier entry points must
  // still produce correct results (they dispatch to the flat schedule).
  comm::World w(4);
  w.run([](comm::Comm& c) {
    EXPECT_FALSE(c.hier_available());
    std::vector<double> data(4, static_cast<double>(c.rank()));
    const auto got = c.reduce_scatter_hier(data, {1, 1, 1, 1});
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 0.0 + 1.0 + 2.0 + 3.0);
  });
  // Single whole node (p / rpn < 2): likewise unavailable.
  comm::World one(4);
  one.set_topology(4);
  one.run([](comm::Comm& c) { EXPECT_FALSE(c.hier_available()); });
}

// ---------------------------------------------------------------------------
// End-to-end: session runs on a topology
// ---------------------------------------------------------------------------

TEST(SyrkTopology, HierarchicalRunMatchesReferenceAndInterVolume) {
  // 1D on P=8, 2 ranks/node -> N=4 nodes. The hierarchical leader exchange
  // moves T·(1−1/N) inter words out of the busiest node, T = n1(n1+1)/2.
  const std::size_t n1 = 16, n2 = 12;
  Matrix a = integer_matrix(n1, n2);
  core::Session session(8);
  core::SyrkRequest req(a);
  req.use_1d().with_topology(2).with_reduce(core::ReduceKind::kHierarchical);
  const core::SyrkRun run = core::syrk(session, req);
  EXPECT_TRUE(run.c == syrk_reference(a.view()));
  EXPECT_EQ(run.nodes, 4);
  EXPECT_EQ(run.plan.strategy, core::CollectiveStrategy::kHierarchical);
  const std::uint64_t tri = n1 * (n1 + 1) / 2;  // 136
  EXPECT_EQ(run.total_inter.max.words_sent, tri - tri / 4);  // (1−1/N)·T
}

TEST(SyrkTopology, PairwiseTierSplitInterVolumeMatchesClosedForm) {
  // Flat pairwise reduce-scatter on a topology: busiest node's inter words
  // are R·T·(P−R)/P — R ranks each send T/P to each of P−R off-node peers.
  const std::size_t n1 = 16, n2 = 12;
  Matrix a = integer_matrix(n1, n2);
  core::Session session(8);
  core::SyrkRequest req(a);
  req.use_1d().with_topology(2);  // explicit algo: strategy stays pairwise
  const core::SyrkRun run = core::syrk(session, req);
  EXPECT_TRUE(run.c == syrk_reference(a.view()));
  EXPECT_EQ(run.nodes, 4);
  EXPECT_EQ(run.plan.strategy, core::CollectiveStrategy::kPairwise);
  const std::uint64_t tri = n1 * (n1 + 1) / 2;  // 136, divisible by P=8
  EXPECT_EQ(run.total_inter.max.words_sent, 2 * (tri / 8) * 6);
}

TEST(SyrkTopology, PairwiseScheduleIsByteIdenticalToFlatRun) {
  // The goldens never fork: a topology'd pairwise run must serialize to the
  // same PSYRKTRC bytes as the flat run (tier accounting is observational).
  Matrix a = integer_matrix(24, 16);
  auto traced = [&](int rpn) {
    core::Session session(6);
    core::SyrkRequest req(a);
    req.use_1d().with_trace();
    if (rpn > 1) req.with_topology(rpn);
    return core::syrk(session, req);
  };
  const core::SyrkRun flat = traced(1);
  const core::SyrkRun topo = traced(2);
  ASSERT_TRUE(flat.trace.has_value());
  ASSERT_TRUE(topo.trace.has_value());
  EXPECT_EQ(trace::to_binary(*topo.trace), trace::to_binary(*flat.trace));
  EXPECT_TRUE(topo.total.total == flat.total.total);
  EXPECT_TRUE(topo.total.max == flat.total.max);
}

TEST(SyrkTopology, FoldedPlanRejectsTopology) {
  Matrix a = integer_matrix(12, 8);
  core::Session session(4);
  core::SyrkRequest req(a);
  req.use_2d(2).with_topology(2);  // 2D needs 6 ranks -> folds onto 4
  EXPECT_THROW(core::syrk(session, req), InvalidArgument);
}

TEST(SyrkTopology, TopologyIsPerRequestNotSticky) {
  // A flat request after a topology'd one must see a flat world again.
  Matrix a = integer_matrix(16, 12);
  core::Session session(8);
  core::SyrkRequest topo(a);
  topo.use_1d().with_topology(2);
  const core::SyrkRun first = core::syrk(session, topo);
  EXPECT_EQ(first.nodes, 4);
  core::SyrkRequest flat(a);
  flat.use_1d();
  const core::SyrkRun second = core::syrk(session, flat);
  EXPECT_EQ(second.nodes, 0);
  EXPECT_EQ(second.total_inter.total.words_sent, 0u);
}

// ---------------------------------------------------------------------------
// BoundAuditor: inter-node volume vs Theorem 1 at P = #nodes
// ---------------------------------------------------------------------------

TEST(TopologyAudit, InterVolumeAuditedAgainstNodeCountBound) {
  const std::size_t n1 = 24, n2 = 16;
  Matrix a = integer_matrix(n1, n2);
  core::Session session(8);
  core::SyrkRequest req(a);
  req.use_1d()
      .with_topology(2)
      .with_reduce(core::ReduceKind::kHierarchical)
      .with_trace();
  const core::SyrkRun run = core::syrk(session, req);
  const trace::AuditReport rep =
      trace::BoundAuditor().audit(n1, n2, run, &*run.trace);
  EXPECT_TRUE(rep.inter_checked);
  EXPECT_EQ(rep.nodes, 4);
  EXPECT_EQ(rep.measured_inter_words,
            static_cast<double>(run.total_inter.max.words_sent));
  // The bound is Theorem 1 re-instantiated at P = nodes.
  const auto want = bounds::syrk_lower_bound(n1, n2, 4);
  EXPECT_EQ(rep.inter_bound.communicated, want.communicated);
  EXPECT_GE(rep.ratio_inter_vs_bound, 1.0 - 0.10);
  EXPECT_TRUE(rep.ok()) << trace::audit_verdict_name(rep.verdict);
}

TEST(TopologyAudit, FlatRunsSkipTheInterCheck) {
  const std::size_t n1 = 16, n2 = 12;
  Matrix a = integer_matrix(n1, n2);
  core::Session session(4);
  core::SyrkRequest req(a);
  req.use_1d().with_trace();
  const core::SyrkRun run = core::syrk(session, req);
  const trace::AuditReport rep =
      trace::BoundAuditor().audit(n1, n2, run, &*run.trace);
  EXPECT_FALSE(rep.inter_checked);
  EXPECT_TRUE(rep.ok());
}

// ---------------------------------------------------------------------------
// Planner: topology-aware pricing and strategy selection
// ---------------------------------------------------------------------------

TEST(TopologyPlanner, EnumeratorPicksHierarchicalWhenItPricesCheaper) {
  // Small problem, deep node (4 ranks/node): the hierarchical realization
  // collapses P−R inter messages into N−1, which dominates at this size
  // under the default machine (α = 10·α0).
  core::PlanSearchOptions opts;
  opts.ranks_per_node = 4;
  const core::PlanReport report = core::enumerate_syrk_plans(48, 32, 8, opts);
  EXPECT_EQ(report.plan().strategy, core::CollectiveStrategy::kHierarchical);
  // The flat search never sets a strategy.
  const core::PlanReport flat = core::enumerate_syrk_plans(48, 32, 8, {});
  EXPECT_EQ(flat.plan().strategy, core::CollectiveStrategy::kPairwise);
}

TEST(TopologyPlanner, TopologyPricingNeverBeatsFlatForSamePlan) {
  // Tier-splitting moves words to a strictly cheaper tier, so pricing any
  // unfolded plan on a topology can only lower its modeled runtime.
  core::PlanSearchOptions opts;
  const core::PlanReport flat = core::enumerate_syrk_plans(64, 48, 8, {});
  const core::Plan plan = flat.plan();
  const double flat_s = core::plan_modeled_seconds(64, 48, plan);
  const double topo_s =
      core::plan_modeled_seconds(64, 48, plan, opts.machine, 4);
  EXPECT_LE(topo_s, flat_s);
  EXPECT_GT(topo_s, 0.0);
}

TEST(TopologyPlanner, PlanCollectiveCostSplitsTiers) {
  core::Plan plan;
  plan.algorithm = core::Algorithm::kOneD;
  plan.procs = 8;
  plan.p1 = 1;
  plan.p2 = 8;
  const costmodel::CollectiveCost flat =
      core::plan_collective_cost(32, 16, plan, 1);
  EXPECT_EQ(flat.words_intra, 0.0);
  const costmodel::CollectiveCost split =
      core::plan_collective_cost(32, 16, plan, 2);
  EXPECT_GT(split.words_intra, 0.0);
  // Words are conserved across the split.
  EXPECT_DOUBLE_EQ(split.words + split.words_intra, flat.words);
  // Non-divisible node size: priced flat (no partial nodes).
  const costmodel::CollectiveCost odd =
      core::plan_collective_cost(32, 16, plan, 3);
  EXPECT_EQ(odd.words_intra, 0.0);
  EXPECT_DOUBLE_EQ(odd.words, flat.words);
}

}  // namespace
}  // namespace parsyrk
