// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/cli.hpp"

namespace parsyrk {
namespace {

CliParser make_parser() {
  CliParser cli;
  cli.add_flag("n1", "rows", "100");
  cli.add_flag("verbose", "chatty output");
  cli.add_flag("rate", "a real number", "0.5");
  return cli;
}

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(Cli, DefaultsApply) {
  auto cli = make_parser();
  auto args = argv_of({});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(cli.get_int("n1"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.5);
  EXPECT_FALSE(cli.has("verbose"));
}

TEST(Cli, EqualsForm) {
  auto cli = make_parser();
  auto args = argv_of({"--n1=42"});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(cli.get_int("n1"), 42);
}

TEST(Cli, SpaceForm) {
  auto cli = make_parser();
  auto args = argv_of({"--n1", "77", "--rate", "1.25"});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(cli.get_int("n1"), 77);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.25);
}

TEST(Cli, BareBooleanFlag) {
  auto cli = make_parser();
  auto args = argv_of({"--verbose", "--n1=5"});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get("verbose"), "true");
  EXPECT_EQ(cli.get_int("n1"), 5);
}

TEST(Cli, TrailingBareFlag) {
  auto cli = make_parser();
  auto args = argv_of({"--verbose"});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(cli.get("verbose"), "true");
}

TEST(Cli, PositionalArguments) {
  auto cli = make_parser();
  auto args = argv_of({"input.mtx", "--n1=3", "output.mtx"});
  cli.parse(static_cast<int>(args.size()), args.data());
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.mtx");
  EXPECT_EQ(cli.positional()[1], "output.mtx");
}

TEST(Cli, UnknownFlagRejected) {
  auto cli = make_parser();
  auto args = argv_of({"--bogus=1"});
  EXPECT_THROW(cli.parse(static_cast<int>(args.size()), args.data()),
               InvalidArgument);
}

TEST(Cli, NonNumericIntRejected) {
  auto cli = make_parser();
  auto args = argv_of({"--n1=abc"});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_THROW(cli.get_int("n1"), InvalidArgument);
}

TEST(Cli, UndeclaredAccessRejected) {
  auto cli = make_parser();
  auto args = argv_of({});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_THROW(cli.get("nope"), InvalidArgument);
}

TEST(Cli, HelpListsFlags) {
  auto cli = make_parser();
  const std::string h = cli.help("tool", "does things");
  EXPECT_NE(h.find("--n1"), std::string::npos);
  EXPECT_NE(h.find("--verbose"), std::string::npos);
  EXPECT_NE(h.find("does things"), std::string::npos);
  EXPECT_NE(h.find("default: 100"), std::string::npos);
}

TEST(Cli, NegativeNumberAsValue) {
  CliParser cli;
  cli.add_flag("offset", "signed value", "0");
  auto args = argv_of({"--offset=-12"});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(cli.get_int("offset"), -12);
}

TEST(Cli, IntOverflowRejected) {
  auto cli = make_parser();
  auto args = argv_of({"--n1=99999999999999999999999"});
  cli.parse(static_cast<int>(args.size()), args.data());
  // Without the ERANGE check strtoll saturates to LLONG_MAX silently.
  EXPECT_THROW(cli.get_int("n1"), InvalidArgument);
}

TEST(Cli, IntUnderflowRejected) {
  auto cli = make_parser();
  auto args = argv_of({"--n1=-99999999999999999999999"});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_THROW(cli.get_int("n1"), InvalidArgument);
}

TEST(Cli, DoubleOverflowRejected) {
  auto cli = make_parser();
  auto args = argv_of({"--rate=1e999"});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_THROW(cli.get_double("rate"), InvalidArgument);
}

TEST(Cli, TrailingGarbageOnNumberRejected) {
  auto cli = make_parser();
  auto args = argv_of({"--rate=1.5x"});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_THROW(cli.get_double("rate"), InvalidArgument);
}

TEST(Cli, RangeCheckedIntAccepts) {
  auto cli = make_parser();
  auto args = argv_of({"--n1=64"});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(cli.get_int_in("n1", 1, 1 << 20), 64);
}

TEST(Cli, RangeCheckedIntRejectsOutOfRange) {
  auto cli = make_parser();
  auto args = argv_of({"--n1=0"});
  cli.parse(static_cast<int>(args.size()), args.data());
  EXPECT_THROW(cli.get_int_in("n1", 1, 1 << 20), InvalidArgument);
}

}  // namespace
}  // namespace parsyrk
