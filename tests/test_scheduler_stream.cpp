// Streaming (work-conserving) scheduler tests: plan_stream_step's pure
// dispatch policy, the streaming_makespan list-scheduling bound, and the
// SyrkService streaming executor end-to-end — bitwise solo equivalence of
// results/ledgers/traces under interleaved completion, poisoned-job
// recovery mid-stream, pipelined 3D jobs with chunked gathers, bound
// audits, and the per-rank timeline observability.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/session.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "service/scheduler.hpp"
#include "service/service.hpp"
#include "support/check.hpp"

namespace parsyrk {
namespace {

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (std::memcmp(x.data() + i * x.ld(), y.data() + i * y.ld(),
                    x.cols() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

service::JobSpec spec(std::uint64_t ranks, double modeled = 1e-6,
                      bool solo = false) {
  service::JobSpec s;
  s.ranks = ranks;
  s.modeled_seconds = modeled;
  s.solo = solo;
  return s;
}

// ---- plan_stream_step: the per-wakeup dispatch policy ----

TEST(PlanStreamStep, PlacesFifoPrefixFirstFitAcrossHoles) {
  const std::vector<service::RankInterval> free = {{0, 4}, {8, 4}};
  const std::vector<service::JobSpec> q = {spec(4), spec(2), spec(4)};
  const auto placed = service::plan_stream_step(q, free, 0.0, 1, {});
  // Job 0 fills the left hole, job 1 takes the leftmost remaining fit;
  // job 2 needs 4 contiguous ranks and only 2 remain -> strict FIFO stops.
  ASSERT_EQ(placed.size(), 2u);
  EXPECT_EQ(placed[0].job, 0u);
  EXPECT_EQ(placed[0].base_rank, 0);
  EXPECT_EQ(placed[1].job, 1u);
  EXPECT_EQ(placed[1].base_rank, 8);
}

TEST(PlanStreamStep, FragmentedHolesCannotHostAContiguousJob) {
  // 6 free ranks exist but no hole is 6 wide: the head does not fit, and
  // FIFO forbids skipping to the 2-rank follower.
  const std::vector<service::RankInterval> free = {{0, 3}, {9, 3}};
  const std::vector<service::JobSpec> q = {spec(6), spec(2)};
  EXPECT_TRUE(service::plan_stream_step(q, free, 0.0, 1, {}).empty());
}

TEST(PlanStreamStep, BudgetCountsInflightWork) {
  service::AdmissionLimits limits;
  limits.modeled_seconds_per_round = 0.05;
  const std::vector<service::RankInterval> free = {{4, 8}};
  const std::vector<service::JobSpec> q = {spec(2, 0.02)};
  // 0.04 already in flight: 0.04 + 0.02 busts the budget.
  EXPECT_TRUE(service::plan_stream_step(q, free, 0.04, 1, limits).empty());
  // 0.02 in flight leaves room.
  EXPECT_EQ(service::plan_stream_step(q, free, 0.02, 1, limits).size(), 1u);
}

TEST(PlanStreamStep, JobCapCountsInflightJobs) {
  service::AdmissionLimits limits;
  limits.max_jobs_per_round = 2;
  const std::vector<service::RankInterval> free = {{0, 12}};
  const std::vector<service::JobSpec> q = {spec(2), spec(2)};
  EXPECT_TRUE(service::plan_stream_step(q, free, 0.0, 2, limits).empty());
  EXPECT_EQ(service::plan_stream_step(q, free, 0.0, 1, limits).size(), 1u);
}

TEST(PlanStreamStep, HeadExemptionOnlyOnIdleWorld) {
  service::AdmissionLimits limits;
  limits.modeled_seconds_per_round = 1e-9;
  const std::vector<service::RankInterval> free = {{0, 12}};
  const std::vector<service::JobSpec> q = {spec(4, 1.0), spec(2, 1e-12)};
  // Idle world: the over-budget head is exempt AND does not consume the
  // follower budget — both jobs dispatch (plan_round's no-starvation rule).
  const auto idle = service::plan_stream_step(q, free, 0.0, 0, limits);
  ASSERT_EQ(idle.size(), 2u);
  EXPECT_EQ(idle[1].base_rank, 4);
  // With anything in flight the head waits its turn like everyone else:
  // the in-flight job's completion is the next dispatch opportunity.
  EXPECT_TRUE(service::plan_stream_step(q, free, 1e-12, 1, limits).empty());
}

TEST(PlanStreamStep, SoloJobsStopTheStream) {
  const std::vector<service::RankInterval> free = {{0, 12}};
  const std::vector<service::JobSpec> q1 = {spec(2, 1e-6, true)};
  EXPECT_TRUE(service::plan_stream_step(q1, free, 0.0, 0, {}).empty());
  const std::vector<service::JobSpec> q2 = {spec(2), spec(4, 1e-6, true),
                                            spec(2)};
  // Dispatch stops at the solo job; the jobs behind it must not overtake.
  EXPECT_EQ(service::plan_stream_step(q2, free, 0.0, 0, {}).size(), 1u);
}

// ---- streaming_makespan: the list-scheduling cost bound ----

TEST(StreamingMakespan, StragglerMixBeatsRoundBarrier) {
  // One 6-rank straggler plus six 2-rank quickies on 12 ranks. The barrier
  // executor pays max(1.0) for round 1 and 0.1 for round 2 = 1.1; the
  // streaming bound hides both quickie waves behind the straggler.
  std::vector<service::JobSpec> q = {spec(6, 1.0)};
  for (int i = 0; i < 6; ++i) q.push_back(spec(2, 0.1));
  const double stream = service::streaming_makespan(q, 12);
  EXPECT_DOUBLE_EQ(stream, 1.0);

  // The matching barrier makespan, summed over plan_round rounds.
  service::AdmissionLimits no_budget;
  no_budget.modeled_seconds_per_round = 1e9;
  double barrier = 0.0;
  std::vector<service::JobSpec> rest = q;
  while (!rest.empty()) {
    const auto round = service::plan_round(rest, 12, no_budget);
    barrier += round.modeled_max_seconds;
    rest.erase(rest.begin(),
               rest.begin() + static_cast<std::ptrdiff_t>(
                                  round.placements.size()));
  }
  EXPECT_DOUBLE_EQ(barrier, 1.1);
  EXPECT_LT(stream, barrier);
}

TEST(StreamingMakespan, SoloJobsQuiesceTheWorld) {
  // The solo job waits for everything in flight, then occupies all ranks.
  const std::vector<service::JobSpec> q = {spec(2, 0.5), spec(12, 0.5, true),
                                           spec(2, 0.5)};
  EXPECT_DOUBLE_EQ(service::streaming_makespan(q, 12), 1.5);
}

TEST(StreamingMakespan, EmptyAndSingleJobDegenerate) {
  EXPECT_DOUBLE_EQ(service::streaming_makespan({}, 12), 0.0);
  EXPECT_DOUBLE_EQ(service::streaming_makespan({spec(4, 0.25)}, 12), 0.25);
}

// ---- SyrkService streaming executor end-to-end ----

service::ServiceOptions streaming_options(int procs) {
  service::ServiceOptions opts;
  opts.procs = procs;
  opts.plan_options.allow_folding = false;
  opts.scheduler = service::SchedMode::kStreaming;
  return opts;
}

TEST(SchedulerStream, StreamedJobsMatchSoloRunsBitwise) {
  // A mixed-size traced workload: completion order under streaming is
  // whatever the rank subsets produce (short jobs legitimately finish
  // ahead of stragglers), but every job's result matrix, rank-range ledger
  // summaries, and rank-range trace must be bitwise-identical to the same
  // request run solo on an equally sized session.
  service::SyrkService svc(streaming_options(12));
  const std::uint64_t caps[] = {6, 2, 3, 2, 4, 3, 6, 2};
  const int jobs = 16;
  std::vector<Matrix> inputs;
  inputs.reserve(jobs);
  std::vector<service::SyrkTicket> tickets;
  for (int j = 0; j < jobs; ++j) {
    // Mixed shapes: straggler-sized heads among quick small jobs.
    const std::size_t n1 = caps[j % 8] >= 4 ? 48 : 16;
    inputs.push_back(random_matrix(n1, 32, 500 + static_cast<unsigned>(j)));
    tickets.push_back(svc.submit(
        core::SyrkRequest(inputs.back()).on_procs(caps[j % 8]).with_trace()));
  }
  std::vector<service::SyrkResult> results;
  for (auto& t : tickets) results.push_back(t.wait());
  svc.drain();

  core::Session solo(12);
  core::PlanSearchOptions plan_opts;
  plan_opts.allow_folding = false;
  solo.set_plan_options(plan_opts);
  for (int j = 0; j < jobs; ++j) {
    const auto ref = core::syrk(
        solo, core::SyrkRequest(inputs[static_cast<std::size_t>(j)])
                  .on_procs(caps[j % 8])
                  .with_trace());
    const auto& run = results[static_cast<std::size_t>(j)].run;
    EXPECT_TRUE(bitwise_equal(run.c, ref.c)) << "job " << j;
    EXPECT_EQ(run.total.total, ref.total.total) << "job " << j;
    EXPECT_EQ(run.total.max, ref.total.max) << "job " << j;
    EXPECT_EQ(run.gather_a.total, ref.gather_a.total) << "job " << j;
    EXPECT_EQ(run.reduce_c.total, ref.reduce_c.total) << "job " << j;
    ASSERT_TRUE(run.trace.has_value()) << "job " << j;
    ASSERT_TRUE(ref.trace.has_value()) << "job " << j;
    EXPECT_EQ(run.trace->phases, ref.trace->phases) << "job " << j;
    EXPECT_EQ(run.trace->events, ref.trace->events) << "job " << j;
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(jobs));
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GE(st.scheduler_gap_seconds, 0.0);
  // Every completion_seq was handed out exactly once.
  std::vector<bool> seen(jobs + 1, false);
  for (const auto& r : results) {
    ASSERT_GE(r.completion_seq, 1u);
    ASSERT_LE(r.completion_seq, static_cast<std::uint64_t>(jobs));
    EXPECT_FALSE(seen[r.completion_seq]) << "duplicate completion seq";
    seen[r.completion_seq] = true;
  }
}

TEST(SchedulerStream, AuditedJobsPassTheoremOneBoundMidStream) {
  // BoundAuditor still audits each streamed job independently: the
  // rank-range trace and ledger it sees must be self-consistent even while
  // other subsets are mid-flight.
  service::SyrkService svc(streaming_options(12));
  const std::uint64_t caps[] = {4, 2, 6, 3};
  std::vector<Matrix> inputs;
  inputs.reserve(8);
  std::vector<service::SyrkTicket> tickets;
  for (int j = 0; j < 8; ++j) {
    inputs.push_back(random_matrix(24, 48, 700 + static_cast<unsigned>(j)));
    tickets.push_back(svc.submit(
        core::SyrkRequest(inputs.back()).on_procs(caps[j % 4]).with_audit()));
  }
  for (auto& t : tickets) {
    const auto& res = t.wait();
    ASSERT_TRUE(res.audit.has_value());
    EXPECT_TRUE(res.audit->ok());
  }
}

TEST(SchedulerStream, PoisonedJobRecoversMidStream) {
  // The guilty job fails inside the SPMD body while innocents are (or may
  // be) mid-flight on other subsets. Recovery: quiesce, clear poison,
  // retry casualties solo — every innocent still matches its reference,
  // and the stream keeps serving afterwards.
  service::SyrkService svc(streaming_options(12));
  Matrix bad_a = random_matrix(18, 8, 5);  // 18 % 2² != 0: rejected in-body
  std::vector<Matrix> goods;
  goods.reserve(5);
  for (int j = 0; j < 5; ++j) {
    goods.push_back(random_matrix(24, 48, 900 + static_cast<unsigned>(j)));
  }
  std::vector<service::SyrkTicket> good_tickets;
  good_tickets.push_back(
      svc.submit(core::SyrkRequest(goods[0]).on_procs(4)));
  auto bad = svc.submit(core::SyrkRequest(bad_a).use_2d(2));
  for (int j = 1; j < 5; ++j) {
    good_tickets.push_back(svc.submit(
        core::SyrkRequest(goods[static_cast<std::size_t>(j)]).on_procs(3)));
  }
  EXPECT_THROW(bad.wait(), InvalidArgument);
  for (std::size_t j = 0; j < good_tickets.size(); ++j) {
    const auto& ok = good_tickets[j].wait();
    EXPECT_LT(max_abs_diff(ok.run.c.view(),
                           syrk_reference(goods[j].view()).view()),
              1e-9)
        << "job " << j;
  }
  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.completed, 5u);

  // The stream stays healthy: a fresh streamed batch completes normally.
  auto again = svc.submit(core::SyrkRequest(goods[0]).on_procs(6));
  EXPECT_LT(max_abs_diff(again.wait().run.c.view(),
                         syrk_reference(goods[0].view()).view()),
            1e-9);
}

TEST(SchedulerStream, Pipelined3DChunkedGatherMatchesSoloBitwise) {
  // A pipelined 3D job — whose all-gather phase now executes through the
  // segmented nonblocking path — streamed next to small 1D jobs. Result,
  // ledger totals, and trace must match the same request run solo.
  service::SyrkService svc(streaming_options(16));
  Matrix big = random_matrix(24, 16, 31);   // 3D on c=2, p2=2: 12 ranks
  Matrix small = random_matrix(16, 24, 32);
  auto t3d = svc.submit(
      core::SyrkRequest(big).use_3d(2, 2).with_pipeline(3).with_trace());
  std::vector<service::SyrkTicket> smalls;
  for (int j = 0; j < 6; ++j) {
    smalls.push_back(svc.submit(core::SyrkRequest(small).use_1d(2)));
  }
  const auto r3d = t3d.wait();
  for (auto& t : smalls) t.wait();
  svc.drain();

  core::Session solo(16);
  core::PlanSearchOptions plan_opts;
  plan_opts.allow_folding = false;
  solo.set_plan_options(plan_opts);
  const auto ref = core::syrk(
      solo,
      core::SyrkRequest(big).use_3d(2, 2).with_pipeline(3).with_trace());
  EXPECT_TRUE(bitwise_equal(r3d.run.c, ref.c));
  EXPECT_EQ(r3d.run.total.total, ref.total.total);
  EXPECT_EQ(r3d.run.total.max, ref.total.max);
  ASSERT_TRUE(r3d.run.trace.has_value());
  ASSERT_TRUE(ref.trace.has_value());
  // Chunked runs record events in completion order, which is not
  // deterministic even solo-to-solo (test_pipeline pins the same contract):
  // the streamed trace must carry the same message count, the same phase
  // table, and live overlap windows from the segmented gather.
  EXPECT_EQ(r3d.run.trace->events.size(), ref.trace->events.size());
  EXPECT_EQ(r3d.run.trace->phases, ref.trace->phases);
  EXPECT_FALSE(r3d.run.trace->overlaps.empty());
  const auto st = svc.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GE(st.pipelined_jobs, 1u);
}

TEST(SchedulerStream, TimelineRecordsEveryDispatchedJob) {
  service::SyrkService svc(streaming_options(12));
  Matrix a = random_matrix(24, 48, 77);
  std::vector<service::SyrkTicket> tickets;
  for (int j = 0; j < 6; ++j) {
    tickets.push_back(svc.submit(core::SyrkRequest(a).on_procs(3)));
  }
  for (auto& t : tickets) t.wait();
  svc.drain();

  const auto tl = svc.timeline();
  ASSERT_EQ(tl.intervals().size(), 6u);
  EXPECT_GE(tl.ranks(), 12);
  EXPECT_GT(tl.horizon_seconds(), 0.0);
  double busy = 0.0;
  for (const auto& iv : tl.intervals()) {
    EXPECT_GE(iv.rank_begin, 0);
    EXPECT_LE(iv.rank_end, 12);
    EXPECT_EQ(iv.rank_end - iv.rank_begin, 3);
    EXPECT_GE(iv.end_seconds, iv.start_seconds);
  }
  for (int r = 0; r < 12; ++r) {
    busy += tl.busy_seconds(r);
    EXPECT_GE(tl.idle_seconds(r), 0.0);
  }
  EXPECT_GT(busy, 0.0);
  const std::string json = tl.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace parsyrk
