// Tests for MatrixMarket dense I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "matrix/io.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/check.hpp"

namespace parsyrk {
namespace {

TEST(MatrixIo, WriteReadRoundTrip) {
  Matrix m = random_matrix(7, 4, 801);
  std::stringstream ss;
  write_matrix_market(ss, m.view());
  Matrix back = read_matrix_market(ss);
  EXPECT_EQ(back.rows(), 7u);
  EXPECT_EQ(back.cols(), 4u);
  EXPECT_LT(max_abs_diff(m.view(), back.view()), 1e-15);
}

TEST(MatrixIo, ColumnMajorOrder) {
  std::stringstream ss(
      "%%MatrixMarket matrix array real general\n"
      "2 3\n"
      "1\n2\n3\n4\n5\n6\n");
  Matrix m = read_matrix_market(ss);
  // Column-major: first column (1,2), second (3,4), third (5,6).
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 0), 2);
  EXPECT_DOUBLE_EQ(m(0, 1), 3);
  EXPECT_DOUBLE_EQ(m(0, 2), 5);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(MatrixIo, CommentsSkipped) {
  std::stringstream ss(
      "%%MatrixMarket matrix array real general\n"
      "% a comment\n"
      "% another\n"
      "1 1\n"
      "42.5\n");
  Matrix m = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(m(0, 0), 42.5);
}

TEST(MatrixIo, SymmetricExpansion) {
  // Symmetric array format stores the lower triangle column by column.
  std::stringstream ss(
      "%%MatrixMarket matrix array real symmetric\n"
      "3 3\n"
      "1\n2\n3\n"   // column 0: (0,0) (1,0) (2,0)
      "4\n5\n"      // column 1: (1,1) (2,1)
      "6\n");       // column 2: (2,2)
  Matrix m = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 2);
  EXPECT_DOUBLE_EQ(m(2, 1), 5);
  EXPECT_DOUBLE_EQ(m(1, 2), 5);
  EXPECT_DOUBLE_EQ(m(2, 2), 6);
}

TEST(MatrixIo, CaseInsensitiveHeader) {
  std::stringstream ss(
      "%%MatrixMarket MATRIX Array Real General\n"
      "1 1\n"
      "7\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(ss)(0, 0), 7);
}

TEST(MatrixIo, RejectsMalformedInputs) {
  {
    std::stringstream ss("not a banner\n1 1\n5\n");
    EXPECT_THROW(read_matrix_market(ss), InvalidArgument);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 5\n");
    EXPECT_THROW(read_matrix_market(ss), InvalidArgument);
  }
  {
    std::stringstream ss("%%MatrixMarket matrix array real general\n2 2\n1\n");
    EXPECT_THROW(read_matrix_market(ss), InvalidArgument);  // short data
  }
  {
    std::stringstream ss("%%MatrixMarket matrix array real general\n0 2\n");
    EXPECT_THROW(read_matrix_market(ss), InvalidArgument);  // bad size
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix array real symmetric\n2 3\n1\n2\n3\n");
    EXPECT_THROW(read_matrix_market(ss), InvalidArgument);  // not square
  }
  EXPECT_THROW(read_matrix_market_file("/nonexistent/file.mtx"),
               InvalidArgument);
}

TEST(MatrixIo, FileRoundTrip) {
  Matrix m = random_matrix(5, 5, 802);
  const std::string path = "/tmp/parsyrk_io_test.mtx";
  write_matrix_market_file(path, m.view());
  Matrix back = read_matrix_market_file(path);
  EXPECT_LT(max_abs_diff(m.view(), back.view()), 1e-15);
}

}  // namespace
}  // namespace parsyrk
