// Tests for src/bounds: the Lemma 6 optimization (analytic vs numeric vs
// KKT), Theorem 1's three-case bound, Lemma 3's symmetric Loomis–Whitney
// inequality, Lemma 4 quasiconvexity, and the GEMM comparator bound.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bounds/exhaustive.hpp"
#include "bounds/lemma3.hpp"
#include "bounds/lemma4.hpp"
#include "bounds/syrk_bounds.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parsyrk::bounds {
namespace {

// ---------------------------------------------------------------------------
// Lemma 6
// ---------------------------------------------------------------------------

TEST(Lemma6, Case1ClosedForm) {
  // n1 <= n2, small P: x1 = n2·sqrt(n1(n1-1))/P, x2 = n1(n1-1)/2.
  const double n1 = 100, n2 = 100000, p = 4;
  const auto s = solve_lemma6(n1, n2, p);
  EXPECT_EQ(s.regime, Regime::kOneD);
  EXPECT_DOUBLE_EQ(s.x1, n2 * std::sqrt(n1 * (n1 - 1)) / p);
  EXPECT_DOUBLE_EQ(s.x2, n1 * (n1 - 1) / 2);
}

TEST(Lemma6, Case2ClosedForm) {
  // n1 > n2, small P: x1 = n2·sqrt(n1(n1-1)/P), x2 = n1(n1-1)/2P.
  const double n1 = 10000, n2 = 10, p = 16;
  const auto s = solve_lemma6(n1, n2, p);
  EXPECT_EQ(s.regime, Regime::kTwoD);
  EXPECT_DOUBLE_EQ(s.x1, n2 * std::sqrt(n1 * (n1 - 1) / p));
  EXPECT_DOUBLE_EQ(s.x2, n1 * (n1 - 1) / (2 * p));
}

TEST(Lemma6, Case3ClosedForm) {
  const double n1 = 1000, n2 = 1000, p = 4096;
  const auto s = solve_lemma6(n1, n2, p);
  EXPECT_EQ(s.regime, Regime::kThreeD);
  const double t = std::pow(n1 * (n1 - 1) * n2 / p, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.x1, t);
  EXPECT_DOUBLE_EQ(s.x2, t / 2);
}

class Lemma6Shapes
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(Lemma6Shapes, AnalyticMatchesNumericMinimum) {
  const auto [n1, n2, p] = GetParam();
  const auto analytic = solve_lemma6(n1, n2, p);
  const auto numeric = solve_lemma6_numeric(n1, n2, p);
  // The numeric sweep can only do as well or slightly worse (grid error).
  EXPECT_LE(analytic.objective(), numeric.objective() * (1.0 + 1e-6));
  EXPECT_NEAR(numeric.objective() / analytic.objective(), 1.0, 1e-4);
}

TEST_P(Lemma6Shapes, AnalyticSolutionSatisfiesKkt) {
  const auto [n1, n2, p] = GetParam();
  const auto s = solve_lemma6(n1, n2, p);
  std::string why;
  EXPECT_TRUE(verify_kkt(n1, n2, p, s, 1e-8, &why)) << why;
}

TEST_P(Lemma6Shapes, PerturbedSolutionFailsKkt) {
  // Moving x1 off the optimum must break a KKT condition (the conditions
  // are sufficient, and for this problem pin down the optimum).
  const auto [n1, n2, p] = GetParam();
  auto s = solve_lemma6(n1, n2, p);
  s.x1 *= 2.0;
  std::string why;
  EXPECT_FALSE(verify_kkt(n1, n2, p, s, 1e-8, &why));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Lemma6Shapes,
    ::testing::Values(
        std::make_tuple(100.0, 100000.0, 4.0),     // case 1, wide
        std::make_tuple(100.0, 1e7, 1000.0),       // case 1, very wide
        std::make_tuple(10000.0, 10.0, 16.0),      // case 2, tall
        std::make_tuple(100000.0, 100.0, 900.0),   // case 2, very tall
        std::make_tuple(1000.0, 1000.0, 64.0),     // case 3, square
        std::make_tuple(1000.0, 1000.0, 4096.0),   // case 3, large P
        std::make_tuple(100.0, 10000.0, 500.0),    // case 3, wide large P
        std::make_tuple(5000.0, 50.0, 100000.0))); // case 3, tall large P

TEST(Lemma6, ContinuityAtCase1Case3Boundary) {
  // The optimal values coincide where P crosses n2/sqrt(n1(n1-1)).
  const double n1 = 100, n2 = 100000;
  const double pstar = n2 / std::sqrt(n1 * (n1 - 1));
  const auto below = solve_lemma6(n1, n2, pstar * 0.999);
  const auto above = solve_lemma6(n1, n2, pstar * 1.001);
  EXPECT_NEAR(below.objective() / above.objective(), 1.0, 5e-3);
}

TEST(Lemma6, ContinuityAtCase2Case3Boundary) {
  const double n1 = 10000, n2 = 10;
  const double pstar = n1 * (n1 - 1) / (n2 * n2);
  const auto below = solve_lemma6(n1, n2, pstar * 0.999);
  const auto above = solve_lemma6(n1, n2, pstar * 1.001);
  EXPECT_NEAR(below.objective() / above.objective(), 1.0, 5e-3);
}

TEST(Lemma6, RejectsBadArguments) {
  EXPECT_THROW(solve_lemma6(1, 10, 4), parsyrk::InvalidArgument);
  EXPECT_THROW(solve_lemma6(10, 0, 4), parsyrk::InvalidArgument);
  EXPECT_THROW(solve_lemma6(10, 10, 0), parsyrk::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Theorem 1
// ---------------------------------------------------------------------------

TEST(Theorem1, CaseSelectionAndValues) {
  {
    // Case 1: W = n1·n2/P + n1(n1-1)/2.
    const auto b = syrk_lower_bound(100, 100000, 4);
    EXPECT_EQ(b.regime, Regime::kOneD);
    EXPECT_DOUBLE_EQ(b.w, 100.0 * 100000.0 / 4.0 + 100.0 * 99.0 / 2.0);
  }
  {
    // Case 2: W = n1·n2/sqrt(P) + n1(n1-1)/2P.
    const auto b = syrk_lower_bound(10000, 10, 16);
    EXPECT_EQ(b.regime, Regime::kTwoD);
    EXPECT_DOUBLE_EQ(b.w,
                     10000.0 * 10.0 / 4.0 + 10000.0 * 9999.0 / 32.0);
  }
  {
    // Case 3: W = (3/2)(n1(n1-1)n2/P)^{2/3}.
    const auto b = syrk_lower_bound(1000, 1000, 4096);
    EXPECT_EQ(b.regime, Regime::kThreeD);
    EXPECT_DOUBLE_EQ(
        b.w, 1.5 * std::pow(1000.0 * 999.0 * 1000.0 / 4096.0, 2.0 / 3.0));
  }
}

TEST(Theorem1, CommunicatedSubtractsResidentData) {
  const auto b = syrk_lower_bound(100, 100000, 4);
  const double resident = (100.0 * 99.0 / 2.0 + 100.0 * 100000.0) / 4.0;
  EXPECT_DOUBLE_EQ(b.communicated, b.w - resident);
  EXPECT_GT(b.communicated, 0.0);
}

TEST(Theorem1, CommunicatedClampedAtZeroForOneProc) {
  const auto b = syrk_lower_bound(50, 50, 1);
  EXPECT_DOUBLE_EQ(b.communicated, 0.0);
}

TEST(Theorem1, ContinuousAcrossPSweep) {
  // W as a function of P must be continuous and non-increasing.
  const std::uint64_t n1 = 600, n2 = 600;
  double prev = std::numeric_limits<double>::infinity();
  for (std::uint64_t p = 1; p <= 4000; p = p * 5 / 4 + 1) {
    const double w = syrk_lower_bound(n1, n2, p).w;
    EXPECT_LE(w, prev * 1.0001) << "P = " << p;
    prev = w;
  }
}

TEST(Theorem1, BoundCaseMatchesLemma6Case) {
  for (std::uint64_t p : {1, 2, 8, 64, 512, 4096, 32768}) {
    const auto b = syrk_lower_bound(500, 2000, p);
    EXPECT_EQ(b.regime, b.solution.regime) << "P = " << p;
  }
}

TEST(Theorem1, RegimeBoundaryTallSkinny) {
  // n1 > n2: the case-2/case-3 boundary sits at P = n1(n1-1)/n2². For
  // (4, 1) that is exactly 12 — the boundary processor count itself must
  // classify as case 2 (the theorem's conditions are inclusive), the next
  // integer as case 3.
  EXPECT_EQ(syrk_lower_bound(4, 1, 12).regime, Regime::kTwoD);
  EXPECT_EQ(syrk_lower_bound(4, 1, 13).regime, Regime::kThreeD);
}

TEST(Theorem1, RegimeBoundaryShortWide) {
  // n1 <= n2: the case-1/case-3 boundary sits at P = n2/sqrt(n1(n1-1)),
  // irrational for every n1 >= 2 (n1(n1-1) is never a perfect square), so
  // integers can only bracket it: (2, 10) has threshold 10/sqrt(2) ≈ 7.07.
  EXPECT_EQ(syrk_lower_bound(2, 10, 7).regime, Regime::kOneD);
  EXPECT_EQ(syrk_lower_bound(2, 10, 8).regime, Regime::kThreeD);
}

TEST(Theorem1, RegimeBoundaryAtSquareSeam) {
  // n1 == n2 takes the short-wide branch: threshold 16/sqrt(16·15) ≈ 1.03,
  // so only P = 1 is case 1.
  EXPECT_EQ(syrk_lower_bound(16, 16, 1).regime, Regime::kOneD);
  EXPECT_EQ(syrk_lower_bound(16, 16, 2).regime, Regime::kThreeD);
  // One extra row tips into the tall branch: threshold 17·16/16² = 1.0625,
  // and P = 1 becomes case 2 instead.
  EXPECT_EQ(syrk_lower_bound(17, 16, 1).regime, Regime::kTwoD);
  EXPECT_EQ(syrk_lower_bound(17, 16, 2).regime, Regime::kThreeD);
}

// ---------------------------------------------------------------------------
// Factor-2 headline: SYRK bound vs GEMM bound
// ---------------------------------------------------------------------------

TEST(GemmComparison, FactorTwoInEveryRegime) {
  struct Case {
    std::uint64_t n1, n2, p;
    Regime expect;
  };
  const Case cases[] = {
      {1000, 1000000, 8, Regime::kOneD},
      {100000, 100, 64, Regime::kTwoD},
      {2000, 2000, 8000, Regime::kThreeD},
  };
  for (const auto& c : cases) {
    const auto syrk = syrk_lower_bound(c.n1, c.n2, c.p);
    const auto gemm = gemm_lower_bound(c.n1, c.n2, c.p);
    ASSERT_EQ(syrk.regime, c.expect);
    ASSERT_EQ(gemm.regime, c.expect);
    EXPECT_NEAR(gemm.communicated / syrk.communicated, 2.0, 0.05)
        << "n1=" << c.n1 << " n2=" << c.n2 << " P=" << c.p;
  }
}

TEST(GemmProjection, InteriorRegimeMatchesClosedForm) {
  // Square-ish problem, large P: no clamping, W = 3(mnk/P)^{2/3}.
  const auto b = gemm_projection_bound(1000, 1000, 1000, 8000);
  EXPECT_EQ(b.clamped, 0);
  const double expect = 3.0 * std::pow(1e9 / 8000.0, 2.0 / 3.0);
  EXPECT_NEAR(b.w(), expect, expect * 1e-12);
  EXPECT_DOUBLE_EQ(b.x1, b.x2);
  EXPECT_DOUBLE_EQ(b.x2, b.x3);
}

TEST(GemmProjection, OneClampInTheSkinnyRegime) {
  // k tiny: the smallest arrays are A (mk) and B (kn); at moderate P one
  // clamps and the other two equalize at sqrt(L²/cap).
  const auto b = gemm_projection_bound(10000, 10000, 10, 10);
  EXPECT_GE(b.clamped, 1);
  // Feasibility of the product constraint at the solution.
  const double l2 = std::pow(10000.0 * 10000.0 * 10.0 / 10.0, 2.0);
  EXPECT_GE(b.x1 * b.x2 * b.x3, l2 * (1.0 - 1e-9));
}

TEST(GemmProjection, IsARelaxationOfTheClosedForms) {
  // Without the per-array lower-bound constraints the relaxation can only
  // be weaker (<=) than the closed-form three-case bound; in the 3D regime
  // the two coincide.
  struct Case {
    std::uint64_t n1, n2, p;
  };
  for (const Case& c : {Case{1000, 1000000, 8}, Case{100000, 100, 64},
                        Case{2000, 2000, 8000}}) {
    const auto relax = gemm_projection_bound(
        static_cast<double>(c.n1), static_cast<double>(c.n1),
        static_cast<double>(c.n2), static_cast<double>(c.p));
    const auto closed = gemm_lower_bound(c.n1, c.n2, c.p);
    EXPECT_LE(relax.w(), closed.w * (1.0 + 1e-9))
        << c.n1 << " " << c.n2 << " " << c.p;
    if (closed.regime == Regime::kThreeD && relax.clamped == 0) {
      EXPECT_NEAR(relax.w() / closed.w, 1.0, 1e-3);
    }
  }
}

TEST(GemmProjection, NeverExceedsArrayCaps) {
  Rng rng(808);
  for (int t = 0; t < 200; ++t) {
    const double m = rng.uniform(1, 1000);
    const double n = rng.uniform(1, 1000);
    const double k = rng.uniform(1, 1000);
    const double p = rng.uniform(1, 10000);
    const auto b = gemm_projection_bound(m, n, k, p);
    EXPECT_LE(b.x1, m * k * (1 + 1e-12));
    EXPECT_LE(b.x2, k * n * (1 + 1e-12));
    EXPECT_LE(b.x3, m * n * (1 + 1e-12));
    EXPECT_GE(b.x1, 0.0);
    if (b.clamped < 3) {
      const double l2 = std::pow(m * n * k / p, 2.0);
      EXPECT_GE(b.x1 * b.x2 * b.x3, l2 * (1.0 - 1e-9));
    }
  }
}

TEST(GemmComparison, GemmBoundContinuousInP) {
  const std::uint64_t n1 = 600, n2 = 600;
  double prev = std::numeric_limits<double>::infinity();
  for (std::uint64_t p = 1; p <= 5000; p = p * 5 / 4 + 1) {
    const double w = gemm_lower_bound(n1, n2, p).w;
    EXPECT_LE(w, prev * 1.0001) << "P = " << p;
    prev = w;
  }
}

// ---------------------------------------------------------------------------
// Exhaustive schedule-space verification of the bound (tiny instances)
// ---------------------------------------------------------------------------

TEST(Exhaustive, NoScheduleBeatsLemma6) {
  // Every balanced assignment of columns to processors needs at least the
  // Lemma 6 data on some processor — checked by full enumeration.
  struct Case {
    std::uint64_t n1, n2;
    int p;
  };
  for (const Case& c : {Case{5, 3, 2}, Case{6, 8, 2}, Case{6, 4, 3},
                        Case{7, 2, 2}, Case{5, 16, 3}}) {
    const auto r = bounds::exhaustive_min_max_data(c.n1, c.n2, c.p);
    EXPECT_GE(r.min_max_data, r.lemma6_optimum * (1.0 - 1e-9))
        << "n1=" << c.n1 << " n2=" << c.n2 << " P=" << c.p;
    EXPECT_GT(r.schedules, 0u);
  }
}

TEST(Exhaustive, SingleProcessorNeedsEverything) {
  const auto r = bounds::exhaustive_min_max_data(5, 3, 1);
  // One processor touches all 5 rows and owns all 10 C entries.
  EXPECT_DOUBLE_EQ(r.min_max_data, 5.0 * 3.0 + 10.0);
}

TEST(Exhaustive, OptimumIsAchievableByRealSchedules) {
  // The returned optimum must be attained by at least one concrete
  // schedule (leaves > 0) and be no better than half the serial data.
  const auto r = bounds::exhaustive_min_max_data(6, 4, 2);
  EXPECT_GT(r.schedules, 0u);
  EXPECT_GE(r.min_max_data, (6.0 * 4.0 + 15.0) / 2.0);
  EXPECT_LE(r.min_max_data, 6.0 * 4.0 + 15.0);
}

TEST(Exhaustive, RejectsOversizedInstances) {
  EXPECT_THROW(bounds::exhaustive_min_max_data(60, 4, 2),
               parsyrk::InvalidArgument);
  EXPECT_THROW(bounds::exhaustive_min_max_data(6, 4, 9),
               parsyrk::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Lemma 3
// ---------------------------------------------------------------------------

TEST(Lemma3, HoldsOnFullIterationSpace) {
  const auto pts = syrk_iteration_space(12, 7);
  EXPECT_TRUE(lemma3_holds(pts));
  EXPECT_TRUE(loomis_whitney_holds(pts));
}

TEST(Lemma3, TightOnTriangleBlocks) {
  // Triangle blocks are the extremal sets: |V| = s(s-1)/2 · d,
  // |phi_i ∪ phi_j| = s·d, |phi_k| = s(s-1)/2 — the ratio approaches 1
  // from above as s grows (exactly 1 in the continuous relaxation).
  const std::vector<std::int64_t> rows = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                          10, 11, 12, 13, 14, 15};
  const auto pts = triangle_block_points(rows, 16);
  const double ratio = lemma3_tightness(pts);
  EXPECT_GE(ratio, 1.0);
  EXPECT_LT(ratio, 1.05);
}

TEST(Lemma3, TightnessImprovesWithBlockSize) {
  auto make_rows = [](std::int64_t s) {
    std::vector<std::int64_t> rows(s);
    for (std::int64_t i = 0; i < s; ++i) rows[i] = i;
    return rows;
  };
  const double small = lemma3_tightness(triangle_block_points(make_rows(4), 4));
  const double large =
      lemma3_tightness(triangle_block_points(make_rows(32), 32));
  EXPECT_GT(small, large);
  EXPECT_GE(large, 1.0);
}

TEST(Lemma3, SquareBlockIsLessEfficientThanTriangle) {
  // A square block (s×s rows-by-columns with disjoint index ranges) of the
  // same volume needs more A data: its tightness ratio is ~sqrt(2) at equal
  // |phi_k|, reflecting the factor the paper gains.
  std::vector<Point3> square;
  const std::int64_t s = 16, d = 16;
  for (std::int64_t i = s; i < 2 * s; ++i) {
    for (std::int64_t j = 0; j < s; ++j) {
      for (std::int64_t k = 0; k < d; ++k) square.push_back({i, j, k});
    }
  }
  std::vector<std::int64_t> rows(static_cast<std::size_t>(s) * 2);
  for (std::int64_t i = 0; i < 2 * s; ++i) rows[i] = i;
  // Compare at (nearly) equal volume: triangle block over 2s rows has
  // 2s(2s-1)/2 ≈ 2s² pairs vs s² for the square; scale depth accordingly.
  const auto tri = triangle_block_points(rows, d / 2);
  const double r_square = lemma3_tightness(square);
  const double r_tri = lemma3_tightness(tri);
  EXPECT_GT(r_square, r_tri);
  EXPECT_NEAR(r_square, std::sqrt(2.0), 0.1);
}

TEST(Lemma3, RandomSubsetsProperty) {
  // Property sweep: arbitrary subsets of the prism never violate the
  // inequality.
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Point3> pts;
    const int n = static_cast<int>(rng.uniform_int(1, 200));
    for (int t = 0; t < n; ++t) {
      const auto i = rng.uniform_int(1, 20);
      const auto j = rng.uniform_int(0, i - 1);
      const auto k = rng.uniform_int(0, 15);
      pts.push_back({i, j, k});
    }
    EXPECT_TRUE(lemma3_holds(pts)) << "trial " << trial;
  }
}

TEST(Lemma3, SinglePoint) {
  // |V| = 1: 2 <= 2·sqrt(2) holds.
  EXPECT_TRUE(lemma3_holds({{1, 0, 0}}));
  EXPECT_DOUBLE_EQ(lemma3_tightness({{1, 0, 0}}),
                   2.0 * std::sqrt(2.0) / 2.0);
}

TEST(Lemma3, EmptySet) {
  EXPECT_DOUBLE_EQ(lemma3_tightness({}), 0.0);
}

TEST(Lemma3, ProjectionsCountUnion) {
  // Points (2,0,0) and (3,2,0): phi_i = {(0,0),(2,0)}, phi_j = {(2,0),(3,0)},
  // union = {(0,0),(2,0),(3,0)} — the shared row index 2 is counted once.
  const auto pr = project({{2, 0, 0}, {3, 2, 0}});
  EXPECT_EQ(pr.phi_i, 2u);
  EXPECT_EQ(pr.phi_j, 2u);
  EXPECT_EQ(pr.phi_k, 2u);
  EXPECT_EQ(pr.phi_i_union_j, 3u);
}

// ---------------------------------------------------------------------------
// Lemma 5
// ---------------------------------------------------------------------------

TEST(Lemma5, HoldsOnRandomSubsets) {
  Rng rng(555);
  const std::int64_t n1 = 12, n2 = 9;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Point3> pts;
    const int count = static_cast<int>(rng.uniform_int(1, 120));
    for (int t = 0; t < count; ++t) {
      const auto i = rng.uniform_int(1, n1 - 1);
      pts.push_back({i, rng.uniform_int(0, i - 1), rng.uniform_int(0, n2 - 1)});
    }
    const auto check = lemma5_check(pts, n1, n2);
    EXPECT_TRUE(check.holds()) << "trial " << trial;
  }
}

TEST(Lemma5, TightForFullPerRowSlabs) {
  // A processor owning every multiplication of C row i accesses exactly
  // i+1 rows of A and contributes to exactly i C entries: the C inequality
  // is tight (|V|/n2 = i).
  const std::int64_t n1 = 10, n2 = 6, i = 7;
  std::vector<Point3> pts;
  for (std::int64_t j = 0; j < i; ++j) {
    for (std::int64_t k = 0; k < n2; ++k) pts.push_back({i, j, k});
  }
  const auto check = lemma5_check(pts, n1, n2);
  EXPECT_DOUBLE_EQ(check.c_elements, static_cast<double>(i));
  EXPECT_DOUBLE_EQ(check.c_lower_bound, static_cast<double>(i));
  EXPECT_TRUE(check.holds());
}

TEST(Lemma5, FullProblemValues) {
  // The whole computation: A projection covers all n1·n2 entries, C
  // projection all n1(n1−1)/2 strict-lower entries.
  const auto pts = syrk_iteration_space(8, 5);
  const auto check = lemma5_check(pts, 8, 5);
  EXPECT_DOUBLE_EQ(check.a_elements, 8.0 * 5.0);
  EXPECT_DOUBLE_EQ(check.c_elements, 28.0);
  EXPECT_DOUBLE_EQ(check.a_lower_bound, 28.0 * 5.0 / 7.0);
  EXPECT_TRUE(check.holds());
}

TEST(Lemma5, RejectsPointsOutsidePrism) {
  EXPECT_DEATH(lemma5_check({{1, 0, 9}}, 4, 4), "prism");
  EXPECT_DEATH(lemma5_check({{0, 0, 0}}, 4, 4), "prism");
}

// ---------------------------------------------------------------------------
// Lemma 4
// ---------------------------------------------------------------------------

TEST(Lemma4, QuasiconvexOnRandomPairs) {
  Rng rng(999);
  const G0 g{1000.0};
  for (int t = 0; t < 5000; ++t) {
    const double x1 = rng.uniform(0.01, 50.0);
    const double x2 = rng.uniform(0.01, 50.0);
    const double y1 = rng.uniform(0.01, 50.0);
    const double y2 = rng.uniform(0.01, 50.0);
    EXPECT_TRUE(quasiconvex_pair_holds(g, x1, x2, y1, y2))
        << "x=(" << x1 << "," << x2 << ") y=(" << y1 << "," << y2 << ")";
  }
}

TEST(Lemma4, GradientFormula) {
  const G0 g{0.0};
  const auto grad = g.gradient(3.0, 5.0);
  EXPECT_DOUBLE_EQ(grad[0], -30.0);
  EXPECT_DOUBLE_EQ(grad[1], -9.0);
}

TEST(Lemma4, AffineObjectiveIsConvex) {
  Rng rng(31);
  for (int t = 0; t < 100; ++t) {
    EXPECT_TRUE(affine_objective_convex_pair(
        rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5),
        rng.uniform(-5, 5)));
  }
}

}  // namespace
}  // namespace parsyrk::bounds
