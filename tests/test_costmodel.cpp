// Tests for src/costmodel: collective cost formulas (§3.2, §6) and the
// closed-form per-algorithm costs (§5 analysis, eqs. (3), (10)–(12)).
#include <gtest/gtest.h>

#include <cmath>

#include "costmodel/algorithm_costs.hpp"
#include "costmodel/model.hpp"

namespace parsyrk::costmodel {
namespace {

TEST(Collectives, PairwiseAllToAll) {
  // §3.2: latency P−1, bandwidth (1−1/P)·w.
  const auto c = all_to_all_pairwise(8, 1000.0);
  EXPECT_DOUBLE_EQ(c.messages, 7.0);
  EXPECT_DOUBLE_EQ(c.words, 875.0);
  EXPECT_DOUBLE_EQ(c.flops, 0.0);
}

TEST(Collectives, PairwiseReduceScatterAddsFlops) {
  const auto c = reduce_scatter_pairwise(4, 100.0);
  EXPECT_DOUBLE_EQ(c.messages, 3.0);
  EXPECT_DOUBLE_EQ(c.words, 75.0);
  EXPECT_DOUBLE_EQ(c.flops, 75.0);
}

TEST(Collectives, SingleRankIsFree) {
  EXPECT_DOUBLE_EQ(all_to_all_pairwise(1, 100.0).words, 0.0);
  EXPECT_DOUBLE_EQ(reduce_scatter_pairwise(1, 100.0).words, 0.0);
  EXPECT_DOUBLE_EQ(all_gather_pairwise(1, 100.0).messages, 0.0);
}

TEST(Collectives, BruckAllGatherLatency) {
  // §6: Bruck is latency-optimal (ceil(log2 P)) at the same bandwidth.
  const auto pair = all_gather_pairwise(16, 512.0);
  const auto bruck = all_gather_bruck(16, 512.0);
  EXPECT_DOUBLE_EQ(bruck.words, pair.words);
  EXPECT_DOUBLE_EQ(bruck.messages, 4.0);
  EXPECT_DOUBLE_EQ(pair.messages, 15.0);
}

TEST(Collectives, ButterflyTradesBandwidthForLatency) {
  // §6: butterfly all-to-all has O(log P) latency but (w/2)·log2 P words.
  const auto pair = all_to_all_pairwise(16, 512.0);
  const auto bfly = all_to_all_butterfly(16, 512.0);
  EXPECT_DOUBLE_EQ(bfly.messages, 4.0);
  EXPECT_DOUBLE_EQ(bfly.words, 0.5 * 512.0 * 4.0);
  EXPECT_GT(bfly.words, pair.words);
}

TEST(Collectives, SecondsCombinesTerms) {
  Machine m{.alpha = 2.0, .beta = 3.0, .gamma = 5.0};
  CollectiveCost c{10.0, 100.0, 7.0};
  EXPECT_DOUBLE_EQ(c.seconds(m), 10.0 * 2.0 + 100.0 * 3.0 + 7.0 * 5.0);
}

TEST(Collectives, Accumulate) {
  CollectiveCost a{1, 2, 3}, b{10, 20, 30};
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s.messages, 11);
  EXPECT_DOUBLE_EQ(s.words, 22);
  EXPECT_DOUBLE_EQ(s.flops, 33);
}

TEST(AlgorithmCosts, Syrk1dMatchesEq3) {
  // Eq. (3): α(P−1) + β·(n1(n1+1)/2)·(P−1)/P.
  const SyrkShape s{100, 10000};
  const auto c = syrk_1d_cost(s, 8);
  EXPECT_DOUBLE_EQ(c.messages, 7.0);
  EXPECT_DOUBLE_EQ(c.words, 100.0 * 101.0 / 2.0 * 7.0 / 8.0);
}

TEST(AlgorithmCosts, Syrk2dMatchesEq10) {
  // Eq. (10): α(P−1) + β·(n1·n2/c)·(1−1/P), P = c(c+1).
  const SyrkShape s{900, 40};
  const std::uint64_t c = 3;
  const auto cost = syrk_2d_cost(s, c);
  const double p = 12.0;
  EXPECT_DOUBLE_EQ(cost.messages, p - 1.0);
  EXPECT_DOUBLE_EQ(cost.words, 900.0 * 40.0 / 3.0 * (1.0 - 1.0 / p));
}

TEST(AlgorithmCosts, Syrk3dMatchesSection532) {
  // §5.3.2: 2D cost on n2/p2 columns over p1 ranks, plus Reduce-Scatter of
  // the triangle block of blocks over p2.
  const SyrkShape s{360, 600};
  const std::uint64_t c = 2, p2 = 3;
  const auto cost = syrk_3d_cost(s, c, p2);
  const double p1 = 6.0;
  const double a2a = 360.0 * 200.0 / 2.0 * (1.0 - 1.0 / p1);
  const double nb = 360.0 / 4.0;
  const double tri = 1.0 * nb * nb + nb * (nb + 1.0) / 2.0;  // c(c-1)/2 = 1
  const double rs = tri * (1.0 - 1.0 / 3.0);
  EXPECT_NEAR(cost.words, a2a + rs, 1e-9);
  EXPECT_DOUBLE_EQ(cost.messages, (p1 - 1.0) + (3.0 - 1.0));
}

TEST(AlgorithmCosts, SyrkFlopsHalvesGemm) {
  const SyrkShape s{1000, 100};
  EXPECT_DOUBLE_EQ(syrk_flops_per_rank(s, 10),
                   1000.0 * 1000.0 * 100.0 / 2.0 / 10.0);
}

TEST(AlgorithmCosts, GemmIsTwiceSyrkLeadingOrder1d) {
  // The headline factor 2: 1D GEMM reduce-scatters n1² words, 1D SYRK only
  // the n1(n1+1)/2 triangle.
  const SyrkShape s{2000, 100000};
  const std::uint64_t p = 16;
  const double gemm = gemm_1d_cost(s, p).words;
  const double syrk = syrk_1d_cost(s, p).words;
  EXPECT_NEAR(gemm / syrk, 2.0, 0.01);
}

TEST(AlgorithmCosts, GemmIsTwiceSyrkLeadingOrder2d) {
  // 2D: GEMM on a √P×√P grid moves 2·n1·n2/√P; SYRK moves n1·n2/c ≈
  // n1·n2/√P.
  const SyrkShape s{10000, 50};
  const std::uint64_t c = 13;            // SYRK: P = 182
  const std::uint64_t r = 13;            // GEMM grid: 169 ranks (≈ same P)
  const double syrk = syrk_2d_cost(s, c).words;
  const double gemm = gemm_2d_cost(s, r).words;
  // Finite-P factors: 2(1−1/r)/(1−1/P) ≈ 1.85 at r = c = 13, → 2 as P grows.
  EXPECT_NEAR(gemm / syrk, 2.0, 0.2);
}

TEST(AlgorithmCosts, Gemm3dOptimalGridCost) {
  // With t = (n2/n1)^{2/3}·P^{1/3} the 3D GEMM cost is 3(n1²n2/P)^{2/3}.
  const SyrkShape s{1 << 10, 1 << 10};
  const std::uint64_t r = 8, t = 4;  // P = 256, square-ish shape
  const auto cost = gemm_3d_cost(s, r, t);
  const double p = 256.0;
  const double ideal =
      3.0 * std::pow(1024.0 * 1024.0 * 1024.0 / p, 2.0 / 3.0);
  EXPECT_NEAR(cost.words / ideal, 1.0, 0.15);
}

TEST(AlgorithmCosts, ScalapackSyrkCommunicatesLikeGemm) {
  const SyrkShape s{4096, 64};
  EXPECT_DOUBLE_EQ(scalapack_syrk_cost(s, 8).words, gemm_2d_cost(s, 8).words);
}

}  // namespace
}  // namespace parsyrk::costmodel
