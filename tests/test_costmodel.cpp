// Tests for src/costmodel: collective cost formulas (§3.2, §6), the
// closed-form per-algorithm costs (§5 analysis, eqs. (3), (10)–(12)), the
// two-level-topology tier split and hierarchical closed forms, and the
// planner's effective-pipeline-chunk accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "core/planner.hpp"
#include "costmodel/algorithm_costs.hpp"
#include "costmodel/model.hpp"

namespace parsyrk::costmodel {
namespace {

TEST(Collectives, PairwiseAllToAll) {
  // §3.2: latency P−1, bandwidth (1−1/P)·w.
  const auto c = all_to_all_pairwise(8, 1000.0);
  EXPECT_DOUBLE_EQ(c.messages, 7.0);
  EXPECT_DOUBLE_EQ(c.words, 875.0);
  EXPECT_DOUBLE_EQ(c.flops, 0.0);
}

TEST(Collectives, PairwiseReduceScatterAddsFlops) {
  const auto c = reduce_scatter_pairwise(4, 100.0);
  EXPECT_DOUBLE_EQ(c.messages, 3.0);
  EXPECT_DOUBLE_EQ(c.words, 75.0);
  EXPECT_DOUBLE_EQ(c.flops, 75.0);
}

TEST(Collectives, SingleRankIsFree) {
  EXPECT_DOUBLE_EQ(all_to_all_pairwise(1, 100.0).words, 0.0);
  EXPECT_DOUBLE_EQ(reduce_scatter_pairwise(1, 100.0).words, 0.0);
  EXPECT_DOUBLE_EQ(all_gather_pairwise(1, 100.0).messages, 0.0);
}

TEST(Collectives, BruckAllGatherLatency) {
  // §6: Bruck is latency-optimal (ceil(log2 P)) at the same bandwidth.
  const auto pair = all_gather_pairwise(16, 512.0);
  const auto bruck = all_gather_bruck(16, 512.0);
  EXPECT_DOUBLE_EQ(bruck.words, pair.words);
  EXPECT_DOUBLE_EQ(bruck.messages, 4.0);
  EXPECT_DOUBLE_EQ(pair.messages, 15.0);
}

TEST(Collectives, ButterflyTradesBandwidthForLatency) {
  // §6: butterfly all-to-all has O(log P) latency but (w/2)·log2 P words.
  const auto pair = all_to_all_pairwise(16, 512.0);
  const auto bfly = all_to_all_butterfly(16, 512.0);
  EXPECT_DOUBLE_EQ(bfly.messages, 4.0);
  EXPECT_DOUBLE_EQ(bfly.words, 0.5 * 512.0 * 4.0);
  EXPECT_GT(bfly.words, pair.words);
}

TEST(Collectives, SecondsCombinesTerms) {
  Machine m{.alpha = 2.0, .beta = 3.0, .gamma = 5.0};
  CollectiveCost c{10.0, 100.0, 7.0};
  EXPECT_DOUBLE_EQ(c.seconds(m), 10.0 * 2.0 + 100.0 * 3.0 + 7.0 * 5.0);
}

TEST(Collectives, Accumulate) {
  CollectiveCost a{1, 2, 3}, b{10, 20, 30};
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s.messages, 11);
  EXPECT_DOUBLE_EQ(s.words, 22);
  EXPECT_DOUBLE_EQ(s.flops, 33);
}

TEST(AlgorithmCosts, Syrk1dMatchesEq3) {
  // Eq. (3): α(P−1) + β·(n1(n1+1)/2)·(P−1)/P.
  const SyrkShape s{100, 10000};
  const auto c = syrk_1d_cost(s, 8);
  EXPECT_DOUBLE_EQ(c.messages, 7.0);
  EXPECT_DOUBLE_EQ(c.words, 100.0 * 101.0 / 2.0 * 7.0 / 8.0);
}

TEST(AlgorithmCosts, Syrk2dMatchesEq10) {
  // Eq. (10): α(P−1) + β·(n1·n2/c)·(1−1/P), P = c(c+1).
  const SyrkShape s{900, 40};
  const std::uint64_t c = 3;
  const auto cost = syrk_2d_cost(s, c);
  const double p = 12.0;
  EXPECT_DOUBLE_EQ(cost.messages, p - 1.0);
  EXPECT_DOUBLE_EQ(cost.words, 900.0 * 40.0 / 3.0 * (1.0 - 1.0 / p));
}

TEST(AlgorithmCosts, Syrk3dMatchesSection532) {
  // §5.3.2: 2D cost on n2/p2 columns over p1 ranks, plus Reduce-Scatter of
  // the triangle block of blocks over p2.
  const SyrkShape s{360, 600};
  const std::uint64_t c = 2, p2 = 3;
  const auto cost = syrk_3d_cost(s, c, p2);
  const double p1 = 6.0;
  const double a2a = 360.0 * 200.0 / 2.0 * (1.0 - 1.0 / p1);
  const double nb = 360.0 / 4.0;
  const double tri = 1.0 * nb * nb + nb * (nb + 1.0) / 2.0;  // c(c-1)/2 = 1
  const double rs = tri * (1.0 - 1.0 / 3.0);
  EXPECT_NEAR(cost.words, a2a + rs, 1e-9);
  EXPECT_DOUBLE_EQ(cost.messages, (p1 - 1.0) + (3.0 - 1.0));
}

TEST(AlgorithmCosts, SyrkFlopsHalvesGemm) {
  const SyrkShape s{1000, 100};
  EXPECT_DOUBLE_EQ(syrk_flops_per_rank(s, 10),
                   1000.0 * 1000.0 * 100.0 / 2.0 / 10.0);
}

TEST(AlgorithmCosts, GemmIsTwiceSyrkLeadingOrder1d) {
  // The headline factor 2: 1D GEMM reduce-scatters n1² words, 1D SYRK only
  // the n1(n1+1)/2 triangle.
  const SyrkShape s{2000, 100000};
  const std::uint64_t p = 16;
  const double gemm = gemm_1d_cost(s, p).words;
  const double syrk = syrk_1d_cost(s, p).words;
  EXPECT_NEAR(gemm / syrk, 2.0, 0.01);
}

TEST(AlgorithmCosts, GemmIsTwiceSyrkLeadingOrder2d) {
  // 2D: GEMM on a √P×√P grid moves 2·n1·n2/√P; SYRK moves n1·n2/c ≈
  // n1·n2/√P.
  const SyrkShape s{10000, 50};
  const std::uint64_t c = 13;            // SYRK: P = 182
  const std::uint64_t r = 13;            // GEMM grid: 169 ranks (≈ same P)
  const double syrk = syrk_2d_cost(s, c).words;
  const double gemm = gemm_2d_cost(s, r).words;
  // Finite-P factors: 2(1−1/r)/(1−1/P) ≈ 1.85 at r = c = 13, → 2 as P grows.
  EXPECT_NEAR(gemm / syrk, 2.0, 0.2);
}

TEST(AlgorithmCosts, Gemm3dOptimalGridCost) {
  // With t = (n2/n1)^{2/3}·P^{1/3} the 3D GEMM cost is 3(n1²n2/P)^{2/3}.
  const SyrkShape s{1 << 10, 1 << 10};
  const std::uint64_t r = 8, t = 4;  // P = 256, square-ish shape
  const auto cost = gemm_3d_cost(s, r, t);
  const double p = 256.0;
  const double ideal =
      3.0 * std::pow(1024.0 * 1024.0 * 1024.0 / p, 2.0 / 3.0);
  EXPECT_NEAR(cost.words / ideal, 1.0, 0.15);
}

TEST(AlgorithmCosts, ScalapackSyrkCommunicatesLikeGemm) {
  const SyrkShape s{4096, 64};
  EXPECT_DOUBLE_EQ(scalapack_syrk_cost(s, 8).words, gemm_2d_cost(s, 8).words);
}

// ---------------------------------------------------------------------------
// Two-level topology: tier split and hierarchical closed forms
// ---------------------------------------------------------------------------

TEST(TwoTier, SecondsPricesBothTiers) {
  Machine m{.alpha = 2.0, .beta = 3.0, .gamma = 5.0,
            .alpha_intra = 0.2, .beta_intra = 0.3};
  CollectiveCost c{10.0, 100.0, 7.0};
  c.messages_intra = 4.0;
  c.words_intra = 50.0;
  EXPECT_DOUBLE_EQ(c.seconds(m), 10.0 * 2.0 + 100.0 * 3.0 + 7.0 * 5.0 +
                                     4.0 * 0.2 + 50.0 * 0.3);
}

TEST(TwoTier, SplitTiersConservesVolume) {
  // Of a rank's P−1 pairwise partners, P−R are off-node: the inter fraction
  // is (P−R)/(P−1) and the rest moves to the intra tier — nothing is lost.
  const CollectiveCost flat = reduce_scatter_pairwise(8, 1000.0);
  const CollectiveCost split = split_tiers(flat, 8, 2);
  EXPECT_DOUBLE_EQ(split.words + split.words_intra, flat.words);
  EXPECT_DOUBLE_EQ(split.messages + split.messages_intra, flat.messages);
  EXPECT_DOUBLE_EQ(split.flops, flat.flops);
  EXPECT_DOUBLE_EQ(split.words, flat.words * 6.0 / 7.0);
}

TEST(TwoTier, SplitTiersIsIdentityWhenTopologyDoesNotApply) {
  const CollectiveCost flat = all_to_all_pairwise(6, 400.0);
  // rpn = 1 (flat machine), non-divisible node size, single whole node.
  for (const std::uint64_t rpn : {1u, 4u, 6u}) {
    const CollectiveCost s = split_tiers(flat, 6, rpn);
    EXPECT_DOUBLE_EQ(s.words, flat.words) << "rpn=" << rpn;
    EXPECT_DOUBLE_EQ(s.words_intra, 0.0) << "rpn=" << rpn;
  }
}

TEST(TwoTier, ReduceScatterHierClosedForm) {
  // N=4 nodes of R=4 ranks, w words/rank: binomial intra reduce
  // (ceil(log2 R) rounds of w), leader-only pairwise reduce-scatter
  // ((1−1/N)·w inter), intra scatter ((1−1/R)·(w/N)).
  const double w = 1024.0;
  const CollectiveCost c = reduce_scatter_hier(4, 4, w);
  EXPECT_DOUBLE_EQ(c.words, (1.0 - 0.25) * w);
  EXPECT_DOUBLE_EQ(c.messages, 3.0);
  EXPECT_DOUBLE_EQ(c.words_intra, 2.0 * w + (1.0 - 0.25) * (w / 4.0));
  // The inter words are what Theorem 1 bounds at P = N: strictly fewer than
  // the tier-split pairwise schedule's R·w·(P−R)/P per node... per rank the
  // leader carries (1−1/N)·w vs the flat (1−1/P)·w.
  EXPECT_LT(c.words, reduce_scatter_pairwise(16, w).words);
}

TEST(TwoTier, AllToAllHierClosedForm) {
  // Leader carries its node's whole off-node volume: R·w·(1−1/N) inter
  // words in N−1 messages; gather+scatter at (R−1)·w each on the intra tier.
  const double w = 300.0;
  const CollectiveCost c = all_to_all_hier(3, 2, w);
  EXPECT_DOUBLE_EQ(c.words, 2.0 * w * (2.0 / 3.0));
  EXPECT_DOUBLE_EQ(c.messages, 2.0);
  EXPECT_DOUBLE_EQ(c.words_intra, 2.0 * 1.0 * w);
  EXPECT_DOUBLE_EQ(c.messages_intra, 2.0 * 1.0);
}

// ---------------------------------------------------------------------------
// Effective pipeline chunks: the modeled ×S term mirrors the executor clamp
// ---------------------------------------------------------------------------

namespace core = parsyrk::core;

core::Plan plan_1d(std::uint64_t p) {
  core::Plan plan;
  plan.algorithm = core::Algorithm::kOneD;
  plan.procs = p;
  plan.c = 0;
  plan.p1 = 1;
  plan.p2 = p;
  return plan;
}

core::Plan plan_2d(std::uint64_t c) {
  core::Plan plan;
  plan.algorithm = core::Algorithm::kTwoD;
  plan.procs = c * (c + 1);
  plan.c = c;
  plan.p1 = c * (c + 1);
  plan.p2 = 1;
  return plan;
}

TEST(EffectiveChunks, OneDClampsToPackedTriangleSize) {
  // 1D segments the n1(n1+1)/2-entry packed triangle: at n1 = 8 there are
  // 36 entries, so 1000 requested chunks execute as 36.
  const core::Plan plan = plan_1d(4);
  EXPECT_EQ(core::plan_effective_pipeline_chunks(8, 4, plan, 1000), 36);
  EXPECT_EQ(core::plan_effective_pipeline_chunks(8, 4, plan, 5), 5);
  EXPECT_EQ(core::plan_effective_pipeline_chunks(8, 4, plan, 0), 1);
  EXPECT_EQ(core::plan_effective_pipeline_chunks(8, 4, plan, -2), 1);
}

TEST(EffectiveChunks, TwoDClampsToSmallestExchangePayload) {
  // 2D segments the (n1/c²)·n2-word exchange payload into at most
  // ⌊payload/(c+1)⌋ nonempty pieces: n1=16, n2=8, c=2 → 32/3 = 10.
  const core::Plan plan = plan_2d(2);
  EXPECT_EQ(core::plan_effective_pipeline_chunks(16, 8, plan, 1 << 20), 10);
  EXPECT_EQ(core::plan_effective_pipeline_chunks(16, 8, plan, 3), 3);
}

TEST(EffectiveChunks, PipelinedSecondsUsesEffectiveNotRequestedChunks) {
  // The ×S latency term must price the segments that can actually exist:
  // requesting 2^20 chunks prices identically to requesting the cap.
  const core::Plan plan = plan_1d(4);
  const int cap = core::plan_effective_pipeline_chunks(8, 4, plan, 1 << 20);
  const double huge =
      core::plan_modeled_seconds_pipelined(8, 4, plan, 1 << 20);
  const double at_cap = core::plan_modeled_seconds_pipelined(8, 4, plan, cap);
  EXPECT_DOUBLE_EQ(huge, at_cap);
  // And chunks <= 1 degenerates to the blocking model exactly.
  EXPECT_DOUBLE_EQ(core::plan_modeled_seconds_pipelined(8, 4, plan, 1),
                   core::plan_modeled_seconds(8, 4, plan));
}

}  // namespace
}  // namespace parsyrk::costmodel
