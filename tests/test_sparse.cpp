// Tests for the sparse module: CSR container semantics, the sequential
// sparse SYRK kernel, and the 1D parallel sparse SYRK with both column
// splits.
#include <gtest/gtest.h>

#include <tuple>

#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "sparse/csr.hpp"
#include "sparse/kernels.hpp"
#include "sparse/parallel.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parsyrk::sparse {
namespace {

/// Random matrix with the requested fill fraction (exact zeros elsewhere).
Matrix sparse_dense(std::size_t rows, std::size_t cols, double fill,
                    std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.uniform() < fill) m(i, j) = rng.uniform(-1, 1);
    }
  }
  return m;
}

TEST(Csr, FromTripletsSortsAndSums) {
  auto m = Csr::from_triplets(3, 3,
                              {{2, 1, 1.0}, {0, 0, 2.0}, {2, 1, 3.0}});
  EXPECT_EQ(m.nnz(), 2u);
  Matrix d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(2, 1), 4.0);  // duplicates summed
}

TEST(Csr, DenseRoundTrip) {
  Matrix m = sparse_dense(9, 13, 0.3, 1001);
  Csr s = Csr::from_dense(m.view());
  EXPECT_LT(max_abs_diff(s.to_dense().view(), m.view()), 1e-15);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  Matrix m = sparse_dense(8, 5, 0.4, 1002);
  Csr s = Csr::from_dense(m.view());
  Csr tt = s.transpose().transpose();
  EXPECT_LT(max_abs_diff(tt.to_dense().view(), m.view()), 1e-15);
  EXPECT_EQ(tt.nnz(), s.nnz());
}

TEST(Csr, TransposeMatchesDenseTranspose) {
  Matrix m = sparse_dense(6, 11, 0.25, 1003);
  Csr s = Csr::from_dense(m.view());
  Matrix expect = transpose(m.view());
  EXPECT_LT(max_abs_diff(s.transpose().to_dense().view(), expect.view()),
            1e-15);
}

TEST(Csr, ColumnSlice) {
  Matrix m = sparse_dense(7, 10, 0.5, 1004);
  Csr s = Csr::from_dense(m.view());
  Csr slice = s.column_slice(3, 4);
  Matrix expect = ConstMatrixView(m.view().block(0, 3, 7, 4)).to_matrix();
  EXPECT_LT(max_abs_diff(slice.to_dense().view(), expect.view()), 1e-15);
  EXPECT_THROW(s.column_slice(8, 4), parsyrk::InvalidArgument);
}

TEST(Csr, DensityAndBounds) {
  auto m = Csr::from_triplets(4, 5, {{0, 0, 1.0}, {3, 4, 1.0}});
  EXPECT_DOUBLE_EQ(m.density(), 2.0 / 20.0);
  EXPECT_THROW(Csr::from_triplets(2, 2, {{2, 0, 1.0}}),
               parsyrk::InvalidArgument);
}

class SparseSyrkShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, double>> {};

TEST_P(SparseSyrkShapes, KernelMatchesDenseReference) {
  const auto [n1, n2, fill] = GetParam();
  Matrix m = sparse_dense(n1, n2, fill, 1005);
  Csr s = Csr::from_dense(m.view());
  Matrix c(n1, n1);
  sparse_syrk_lower(s, c.view());
  Matrix ref = syrk_reference(m.view());
  EXPECT_LT(max_abs_diff_lower(c.view(), ref.view()), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparseSyrkShapes,
                         ::testing::Values(std::make_tuple(20, 30, 0.1),
                                           std::make_tuple(40, 15, 0.05),
                                           std::make_tuple(12, 12, 1.0),
                                           std::make_tuple(25, 40, 0.0),
                                           std::make_tuple(30, 8, 0.5)));

TEST(SparseSyrk, FlopCountFormula) {
  // Two columns with 3 and 2 nonzeros: 6 + 3 = 9 multiply-adds.
  auto s = Csr::from_triplets(5, 2,
                              {{0, 0, 1.0},
                               {2, 0, 1.0},
                               {4, 0, 1.0},
                               {1, 1, 1.0},
                               {3, 1, 1.0}});
  EXPECT_EQ(sparse_syrk_flops(s), 9u);
}

TEST(SparseSyrk, FlopsShrinkQuadraticallyWithFill) {
  const std::size_t n1 = 60, n2 = 60;
  Csr dense = Csr::from_dense(sparse_dense(n1, n2, 1.0, 1006).view());
  Csr tenth = Csr::from_dense(sparse_dense(n1, n2, 0.1, 1007).view());
  const double ratio = static_cast<double>(sparse_syrk_flops(dense)) /
                       static_cast<double>(sparse_syrk_flops(tenth));
  EXPECT_GT(ratio, 50.0);   // ~1/fill² = 100, with sampling noise
  EXPECT_LT(ratio, 200.0);
}

class Sparse1dProcs : public ::testing::TestWithParam<int> {};

TEST_P(Sparse1dProcs, UniformSplitMatchesReference) {
  const int p = GetParam();
  Matrix m = sparse_dense(24, 50, 0.15, 1008);
  Csr s = Csr::from_dense(m.view());
  comm::World world(p);
  Matrix c = sparse_syrk_1d(world, s, ColumnSplit::kUniform);
  EXPECT_LT(max_abs_diff(c.view(), syrk_reference(m.view()).view()), 1e-10);
}

TEST_P(Sparse1dProcs, NnzBalancedSplitMatchesReference) {
  const int p = GetParam();
  Matrix m = sparse_dense(24, 50, 0.15, 1009);
  Csr s = Csr::from_dense(m.view());
  comm::World world(p);
  Matrix c = sparse_syrk_1d(world, s, ColumnSplit::kNnzBalanced);
  EXPECT_LT(max_abs_diff(c.view(), syrk_reference(m.view()).view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Procs, Sparse1dProcs, ::testing::Values(1, 2, 5, 8));

TEST(Sparse1d, CommunicationEqualsDenseAlgorithm) {
  // The reduce-scattered triangle is dense no matter the input fill.
  const std::size_t n1 = 32, n2 = 64;
  Matrix m = sparse_dense(n1, n2, 0.05, 1010);
  Csr s = Csr::from_dense(m.view());
  comm::World world(8);
  sparse_syrk_1d(world, s);
  const double expected =
      (1.0 - 1.0 / 8.0) * static_cast<double>(n1 * (n1 + 1) / 2);
  for (const auto& r : world.ledger().per_rank()) {
    EXPECT_NEAR(static_cast<double>(r.words_sent), expected, 1.0);
  }
}

TEST(Sparse1d, ColumnRangesPartition) {
  Matrix m = sparse_dense(16, 37, 0.2, 1011);
  Csr s = Csr::from_dense(m.view());
  for (auto split : {ColumnSplit::kUniform, ColumnSplit::kNnzBalanced}) {
    const auto ranges = column_ranges(s, 5, split);
    std::size_t cursor = 0;
    for (const auto& [lo, hi] : ranges) {
      EXPECT_EQ(lo, cursor);
      EXPECT_LE(lo, hi);
      cursor = hi;
    }
    EXPECT_EQ(cursor, 37u);
  }
}

TEST(Sparse1d, NnzBalancedEvensSkewedWork) {
  // Heavily skewed fill: the first 8 columns are dense, the rest nearly
  // empty. A uniform split puts almost all flops on rank 0; the balanced
  // split spreads them.
  const std::size_t n1 = 30, n2 = 64;
  std::vector<std::tuple<std::size_t, std::size_t, double>> trip;
  Rng rng(1012);
  for (std::size_t k = 0; k < 8; ++k) {
    for (std::size_t i = 0; i < n1; ++i) trip.emplace_back(i, k, 1.0);
  }
  for (std::size_t k = 8; k < n2; ++k) {
    trip.emplace_back(rng.uniform_int(0, n1 - 1), k, 1.0);
  }
  Csr s = Csr::from_triplets(n1, n2, std::move(trip));
  auto flops_of = [&](const std::vector<std::pair<std::size_t, std::size_t>>&
                          ranges) {
    std::vector<std::uint64_t> w;
    for (const auto& [lo, hi] : ranges) {
      w.push_back(hi > lo ? sparse_syrk_flops(s.column_slice(lo, hi - lo))
                          : 0);
    }
    const auto mx = *std::max_element(w.begin(), w.end());
    std::uint64_t total = 0;
    for (auto x : w) total += x;
    return static_cast<double>(mx) / (static_cast<double>(total) / w.size());
  };
  const double uniform =
      flops_of(column_ranges(s, 4, ColumnSplit::kUniform));
  const double balanced =
      flops_of(column_ranges(s, 4, ColumnSplit::kNnzBalanced));
  EXPECT_GT(uniform, 2.5);
  EXPECT_LT(balanced, 1.8);
}

// ---------------------------------------------------------------------------
// Symmetric sparse SpMM (sparse SYMM) and symmetric SDDMM (§6 kernels)
// ---------------------------------------------------------------------------

/// Random symmetric lower pattern (diagonal included) at the given fill.
Csr random_lower(std::size_t n, double fill, std::uint64_t seed) {
  std::vector<std::tuple<std::size_t, std::size_t, double>> trip;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (j == i || rng.uniform() < fill) {
        trip.emplace_back(i, j, rng.uniform(-1, 1));
      }
    }
  }
  return Csr::from_triplets(n, n, std::move(trip));
}

TEST(SparseSymm, MatchesDenseSymm) {
  const std::size_t n = 22, m = 7;
  Csr s = random_lower(n, 0.3, 1101);
  Matrix b = random_matrix(n, m, 1102);
  Matrix out = sparse_symm_lower(s, b.view());
  // Dense oracle: expand and use the dense SYMM kernel.
  Matrix dense = s.to_dense();
  Matrix expect = symm_reference(dense.view(), b.view());
  EXPECT_LT(max_abs_diff(out.view(), expect.view()), 1e-12);
}

TEST(SparseSymm, DiagonalOnlyActsOnce) {
  // A diagonal pattern must scale rows exactly once (no double count).
  Csr s = Csr::from_triplets(3, 3, {{0, 0, 2.0}, {1, 1, 3.0}, {2, 2, 4.0}});
  Matrix b = Matrix::from_rows({{1, 1}, {1, 1}, {1, 1}});
  Matrix out = sparse_symm_lower(s, b.view());
  EXPECT_DOUBLE_EQ(out(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(out(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(out(2, 0), 4.0);
}

TEST(SparseSymm, RejectsUpperEntries) {
  Csr bad = Csr::from_triplets(3, 3, {{0, 2, 1.0}});
  Matrix b(3, 2);
  EXPECT_THROW(sparse_symm_lower(bad, b.view()), parsyrk::InvalidArgument);
}

TEST(Sddmm, MatchesMaskedSyrk) {
  const std::size_t n1 = 18, n2 = 9;
  Csr mask = random_lower(n1, 0.25, 1103);
  Matrix a = random_matrix(n1, n2, 1104);
  Csr out = sddmm_syrk(mask, a.view());
  Matrix full = syrk_reference(a.view());
  Matrix dense_out = out.to_dense();
  Matrix dense_mask = mask.to_dense();
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(dense_out(i, j), dense_mask(i, j) * full(i, j), 1e-11)
          << i << "," << j;
    }
  }
  EXPECT_EQ(out.nnz(), mask.nnz());
}

class SddmmProcs : public ::testing::TestWithParam<int> {};

TEST_P(SddmmProcs, ParallelMatchesSequential) {
  const int p = GetParam();
  const std::size_t n1 = 20, n2 = 33;
  Csr mask = random_lower(n1, 0.2, 1105);
  Matrix a = random_matrix(n1, n2, 1106);
  comm::World world(p);
  Csr par = sddmm_syrk_1d(world, mask, a.view());
  Csr seq = sddmm_syrk(mask, a.view());
  EXPECT_LT(max_abs_diff(par.to_dense().view(), seq.to_dense().view()),
            1e-11);
}

INSTANTIATE_TEST_SUITE_P(Procs, SddmmProcs, ::testing::Values(1, 3, 6, 8));

TEST(Sddmm, CommunicationScalesWithMaskNnz) {
  // The reduced volume is (1−1/P)·nnz(mask) words — sparse OUTPUT shrinks
  // communication, the mirror image of sparse SYRK (dense output).
  const std::size_t n1 = 40, n2 = 24;
  Matrix a = random_matrix(n1, n2, 1107);
  const int p = 4;
  for (double fill : {0.5, 0.1}) {
    Csr mask = random_lower(n1, fill, 1108);
    comm::World world(p);
    sddmm_syrk_1d(world, mask, a.view());
    const double expected =
        (1.0 - 1.0 / p) * static_cast<double>(mask.nnz());
    EXPECT_NEAR(static_cast<double>(
                    world.ledger().summary().max.words_sent),
                expected, 1.0)
        << "fill " << fill;
  }
}

}  // namespace
}  // namespace parsyrk::sparse
