// Tracing under failure isolation: a rank that throws mid-job poisons only
// its own job — the recorder must flush the poisoned job's partial events
// (flagged), stay internally consistent, and produce byte-identical traces
// for every surrounding job, exactly as the ledger does for costs.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/job_queue.hpp"
#include "simmpi/trace.hpp"
#include "simmpi/worker_pool.hpp"
#include "support/rng.hpp"
#include "trace/export.hpp"

namespace parsyrk::comm {
namespace {

/// `rounds` all-gathers; throws on `bad_rank` before round `fail_round`
/// (−1 = never). Mirrors the fuzz suite's failing-job machinery.
std::function<void(Comm&)> rounds_body(int rounds, int n, int fail_round,
                                       int bad_rank) {
  return [rounds, n, fail_round, bad_rank](Comm& comm) {
    for (int round = 0; round < rounds; ++round) {
      if (round == fail_round && comm.rank() == bad_rank) {
        throw std::runtime_error("traced failure");
      }
      comm.set_phase("round" + std::to_string(round));
      auto all = comm.all_gather(std::vector<double>(n, 1.0 * comm.rank()));
      ASSERT_EQ(all.size(), static_cast<std::size_t>(n) * comm.size());
    }
  };
}

/// The trace of one clean job on a fresh traced world, serialized.
std::string fresh_trace_bytes(int p, int rounds, int n) {
  World world(p);
  world.enable_tracing();
  world.run(rounds_body(rounds, n, -1, 0));
  return trace::to_binary(world.trace_sink()->drain(false));
}

TEST(TraceFailure, PoisonedJobFlushesFlaggedTrace) {
  const int p = 4;
  World world(p);
  world.enable_tracing();
  JobQueue queue(world);
  queue.enqueue("good1", rounds_body(3, 2, -1, 0));
  queue.enqueue("bad", rounds_body(3, 2, /*fail_round=*/1, /*bad_rank=*/2));
  queue.enqueue("good2", rounds_body(3, 2, -1, 0));
  const auto results = queue.drain();
  ASSERT_EQ(results.size(), 3u);

  ASSERT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  ASSERT_TRUE(results[2].ok());

  // Every job — including the poisoned one — drained a trace.
  for (const auto& res : results) ASSERT_TRUE(res.trace.has_value());

  const JobTrace& bad = *results[1].trace;
  EXPECT_TRUE(bad.poisoned);
  EXPECT_EQ(bad.dropped, 0u);
  // Round 0 completed on all ranks before the failure, so the partial
  // flush holds at least that round's traffic.
  EXPECT_FALSE(bad.events.empty());
  for (const TraceEvent& e : bad.events) {
    EXPECT_EQ(e.kind, OpKind::kAllGather);
  }

  // The surrounding jobs are untouched: byte-identical to each other and
  // to a fresh world's run of the same body, and consistent with their own
  // job-scoped ledger costs.
  const std::string fresh = fresh_trace_bytes(p, 3, 2);
  EXPECT_EQ(trace::to_binary(*results[0].trace), fresh);
  EXPECT_EQ(trace::to_binary(*results[2].trace), fresh);
  for (const int j : {0, 2}) {
    const trace::Rollup roll(*results[j].trace);
    EXPECT_EQ(roll.summary().total, results[j].cost.total) << "job " << j;
    EXPECT_EQ(roll.summary().max, results[j].cost.max) << "job " << j;
  }
  EXPECT_FALSE(results[0].trace->poisoned);
  EXPECT_FALSE(results[2].trace->poisoned);
}

TEST(TraceFailure, ImmediateFailureYieldsEmptyPoisonedTrace) {
  World world(3);
  world.enable_tracing();
  JobQueue queue(world);
  queue.enqueue(rounds_body(2, 1, /*fail_round=*/0, /*bad_rank=*/0));
  const auto results = queue.drain();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].ok());
  ASSERT_TRUE(results[0].trace.has_value());
  EXPECT_TRUE(results[0].trace->poisoned);
  // Rank 0 threw before any message; peers may or may not have started
  // their sends — whatever was recorded must still round-trip cleanly.
  const JobTrace parsed =
      trace::from_binary(trace::to_binary(*results[0].trace));
  EXPECT_TRUE(parsed.poisoned);
  EXPECT_EQ(parsed.events, results[0].trace->events);
}

class TraceFailureFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceFailureFuzz, RandomFailingSequencesKeepRecorderConsistent) {
  // Random job sequences with one failing job, drained on one traced warm
  // world: every clean job's trace must match a fresh traced world's bytes,
  // and the world must keep producing fresh-identical traces afterwards.
  Rng planner(GetParam());
  const int p = static_cast<int>(planner.uniform_int(2, 8));
  const int jobs = static_cast<int>(planner.uniform_int(3, 6));
  const int bad_job = static_cast<int>(planner.uniform_int(0, jobs - 1));
  const int bad_rank = static_cast<int>(planner.uniform_int(0, p - 1));

  std::vector<int> sizes(jobs), fail_round(jobs, -1);
  for (int j = 0; j < jobs; ++j) {
    sizes[j] = static_cast<int>(planner.uniform_int(1, 5));
  }
  fail_round[bad_job] = static_cast<int>(planner.uniform_int(0, 2));

  std::vector<std::string> fresh(jobs);
  for (int j = 0; j < jobs; ++j) {
    if (j == bad_job) continue;
    fresh[j] = fresh_trace_bytes(p, 3, sizes[j]);
  }

  WorkerPool pool;
  World world(p, pool);
  world.enable_tracing();
  const std::uint64_t warm = pool.threads_created();
  JobQueue queue(world);
  for (int j = 0; j < jobs; ++j) {
    queue.enqueue(rounds_body(3, sizes[j], fail_round[j], bad_rank));
  }
  const auto results = queue.drain();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    ASSERT_TRUE(results[j].trace.has_value()) << "job " << j;
    if (j == bad_job) {
      EXPECT_FALSE(results[j].ok()) << "job " << j;
      EXPECT_TRUE(results[j].trace->poisoned) << "job " << j;
      continue;
    }
    EXPECT_TRUE(results[j].ok()) << "job " << j;
    EXPECT_FALSE(results[j].trace->poisoned) << "job " << j;
    EXPECT_EQ(trace::to_binary(*results[j].trace), fresh[j]) << "job " << j;
  }
  EXPECT_EQ(pool.threads_created(), warm);

  // Recorder (and runtime) fully recovered: one more traced job matches a
  // fresh world byte-for-byte.
  world.run(rounds_body(3, 2, -1, 0));
  EXPECT_EQ(trace::to_binary(world.trace_sink()->drain(false)),
            fresh_trace_bytes(p, 3, 2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFailureFuzz,
                         ::testing::Values(61, 62, 63, 64, 65));

}  // namespace
}  // namespace parsyrk::comm
