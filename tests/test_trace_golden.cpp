// Golden-trace regression tests: the exact per-message schedule of the
// 1D/2D/3D algorithms on small fixed problems, committed as binary traces
// under tests/golden/. A schedule change (different message sizes, order,
// phases, or collective composition) shows up as a byte diff against the
// golden file — intentional changes regenerate with:
//
//   PARSYRK_REGEN_GOLDEN=1 ./build/tests/test_trace_golden
//
// The second half asserts warm-equals-fresh: a warm session (or JobQueue)
// that already ran other jobs must produce byte-identical traces to a
// fresh world, which is what makes the committed goldens meaningful for
// both execution models.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/session.hpp"
#include "matrix/random.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/job_queue.hpp"
#include "simmpi/worker_pool.hpp"
#include "trace/export.hpp"

namespace parsyrk {
namespace {

struct GoldenConfig {
  const char* name;   // golden file stem
  int session_ranks;  // fixed so fresh and warm worlds agree on rank count
  std::size_t n1, n2;
  std::uint64_t seed;
  // Applies the algorithm selection to a request.
  void (*select)(core::SyrkRequest&);
};

const GoldenConfig kConfigs[] = {
    {"trace_1d", 6, 24, 48, 11,
     [](core::SyrkRequest& r) { r.use_1d(); }},
    {"trace_2d", 6, 16, 8, 12,
     [](core::SyrkRequest& r) { r.use_2d(2); }},
    {"trace_3d", 12, 24, 24, 13,
     [](core::SyrkRequest& r) { r.use_3d(2, 2); }},
};

std::string golden_path(const GoldenConfig& cfg) {
  return std::string(PARSYRK_GOLDEN_DIR) + "/" + cfg.name + ".bin";
}

/// One traced run of the config's problem on the given session.
std::string traced_bytes(core::Session& session, const GoldenConfig& cfg,
                         const Matrix& a) {
  core::SyrkRequest req(a);
  cfg.select(req);
  req.with_trace();
  const auto run = core::syrk(session, req);
  EXPECT_TRUE(run.trace.has_value()) << cfg.name;
  return trace::to_binary(*run.trace);
}

std::string traced_bytes_fresh(const GoldenConfig& cfg) {
  Matrix a = random_matrix(cfg.n1, cfg.n2, cfg.seed);
  core::Session session(cfg.session_ranks);
  return traced_bytes(session, cfg, a);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class TraceGolden : public ::testing::TestWithParam<GoldenConfig> {};

TEST_P(TraceGolden, MatchesCommittedGolden) {
  const GoldenConfig& cfg = GetParam();
  const std::string bytes = traced_bytes_fresh(cfg);
  ASSERT_FALSE(bytes.empty());
  const std::string path = golden_path(cfg);
  if (std::getenv("PARSYRK_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << bytes;
    GTEST_SKIP() << "regenerated " << path << " (" << bytes.size()
                 << " bytes)";
  }
  const std::string golden = read_file(path);
  ASSERT_FALSE(golden.empty())
      << "missing golden " << path
      << "; regenerate with PARSYRK_REGEN_GOLDEN=1";
  EXPECT_EQ(bytes, golden)
      << cfg.name << ": message schedule diverged from the committed trace; "
      << "if intentional, regenerate with PARSYRK_REGEN_GOLDEN=1";
  // The golden parses back to a sane trace (guards against committing a
  // truncated or corrupted file).
  const comm::JobTrace parsed = trace::from_binary(golden);
  EXPECT_EQ(parsed.ranks, static_cast<std::uint32_t>(cfg.session_ranks));
  EXPECT_FALSE(parsed.poisoned);
  EXPECT_EQ(parsed.dropped, 0u);
  EXPECT_FALSE(parsed.events.empty());
}

TEST_P(TraceGolden, WarmSessionMatchesFreshWorld) {
  const GoldenConfig& cfg = GetParam();
  const std::string fresh = traced_bytes_fresh(cfg);

  // Warm session: other work first (planner jobs of a different shape, both
  // traced and untraced), then the config's problem. Per-job ordinal/tag
  // resets must make the trace byte-identical to the fresh run's.
  Matrix a = random_matrix(cfg.n1, cfg.n2, cfg.seed);
  Matrix other = random_matrix(12, 36, cfg.seed + 100);
  comm::WorkerPool pool;
  core::Session session(cfg.session_ranks, pool);
  (void)core::syrk(session, core::SyrkRequest(other).with_trace());
  (void)core::syrk(session, core::SyrkRequest(other));
  const std::uint64_t warm_threads = pool.threads_created();
  const std::string warm = traced_bytes(session, cfg, a);
  EXPECT_EQ(warm, fresh) << cfg.name;
  EXPECT_EQ(pool.threads_created(), warm_threads);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, TraceGolden, ::testing::ValuesIn(kConfigs),
    [](const ::testing::TestParamInfo<GoldenConfig>& info) {
      return std::string(info.param.name);
    });

TEST(TraceGoldenQueue, RepeatedJobsDrainIdenticalTraces) {
  // The JobQueue boundary: the same SPMD body enqueued twice on one warm
  // world drains two byte-identical traces, each equal to a fresh world's.
  auto body = [](comm::Comm& comm) {
    comm.set_phase("gather");
    comm.all_gather(std::vector<double>(3, 1.0 * comm.rank()));
    comm.set_phase("reduce");
    comm.reduce_scatter_equal(std::vector<double>(8, 2.0));
  };

  comm::World fresh_world(4);
  fresh_world.enable_tracing();
  fresh_world.run(body);
  const std::string fresh =
      trace::to_binary(fresh_world.trace_sink()->drain(false));

  comm::World world(4);
  world.enable_tracing();
  comm::JobQueue queue(world);
  queue.enqueue("first", body);
  queue.enqueue("second", body);
  const auto results = queue.drain();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& res : results) {
    ASSERT_TRUE(res.ok());
    ASSERT_TRUE(res.trace.has_value());
    EXPECT_EQ(trace::to_binary(*res.trace), fresh);
  }
  EXPECT_EQ(results[0].trace->job_id + 1, results[1].trace->job_id);
}

}  // namespace
}  // namespace parsyrk
