// Tests for src/seqio: the fast-memory/LRU simulators and the three
// sequential SYRK schemes — correctness of the restructured arithmetic and
// the measured I/O against the closed-form expectations (the Beaumont √2
// story the paper builds on).
#include <gtest/gtest.h>

#include <cmath>

#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "seqio/fast_memory.hpp"
#include "seqio/lru_cache.hpp"
#include "seqio/seq_cholesky.hpp"
#include "seqio/seq_syrk.hpp"
#include "support/check.hpp"

namespace parsyrk::seqio {
namespace {

TEST(FastMemory, CountsLoadsAndStores) {
  FastMemory fm(100);
  fm.load(30);
  fm.allocate(20);
  EXPECT_EQ(fm.resident(), 50u);
  fm.store_and_evict(20);
  fm.evict(30);
  EXPECT_EQ(fm.resident(), 0u);
  EXPECT_EQ(fm.loads(), 30u);
  EXPECT_EQ(fm.stores(), 20u);
  EXPECT_EQ(fm.total_io(), 50u);
}

TEST(FastMemory, AllocateIsFreeOfIo) {
  FastMemory fm(10);
  fm.allocate(10);
  EXPECT_EQ(fm.loads(), 0u);
  fm.evict(10);
  EXPECT_EQ(fm.total_io(), 0u);
}

TEST(LruCache, HitsAfterFirstTouch) {
  LruCache cache(4);
  EXPECT_TRUE(cache.access(1));   // miss
  EXPECT_FALSE(cache.access(1));  // hit
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.access(1);
  cache.access(2);
  cache.access(1);              // 1 is now most recent
  EXPECT_TRUE(cache.access(3)); // evicts 2
  EXPECT_FALSE(cache.access(1));
  EXPECT_TRUE(cache.access(2)); // 2 was evicted
}

TEST(LruCache, CapacityOneThrashes) {
  LruCache cache(1);
  for (int i = 0; i < 10; ++i) {
    cache.access(i % 2);
  }
  EXPECT_EQ(cache.misses(), 10u);
}

TEST(LruCache, SequentialScanWithinCapacityAllHitsSecondPass) {
  LruCache cache(64);
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 64; ++i) cache.access(i);
  }
  EXPECT_EQ(cache.misses(), 64u);
  EXPECT_EQ(cache.hits(), 64u);
}

// ---------------------------------------------------------------------------
// Sequential SYRK schemes: correctness.
// ---------------------------------------------------------------------------

class SeqSchemes : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(SeqSchemes, NaiveMatchesReference) {
  const auto [n1, n2, m] = GetParam();
  Matrix a = random_matrix(n1, n2, 5);
  const auto r = seq_syrk_naive(a.view(), m);
  Matrix ref = syrk_reference(a.view());
  EXPECT_LT(max_abs_diff(r.c.view(), ref.view()), 1e-11);
}

TEST_P(SeqSchemes, SquareMatchesReference) {
  const auto [n1, n2, m] = GetParam();
  Matrix a = random_matrix(n1, n2, 6);
  const auto r = seq_syrk_square(a.view(), m);
  Matrix ref = syrk_reference(a.view());
  EXPECT_LT(max_abs_diff(r.c.view(), ref.view()), 1e-11);
}

TEST_P(SeqSchemes, TriangleMatchesReference) {
  const auto [n1, n2, m] = GetParam();
  Matrix a = random_matrix(n1, n2, 7);
  const auto r = seq_syrk_triangle(a.view(), m);
  Matrix ref = syrk_reference(a.view());
  EXPECT_LT(max_abs_diff(r.c.view(), ref.view()), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SeqSchemes,
    ::testing::Values(std::make_tuple(36, 20, 600),
                      std::make_tuple(100, 16, 1500),
                      std::make_tuple(64, 64, 2000),
                      std::make_tuple(49, 8, 1200)));

// ---------------------------------------------------------------------------
// Sequential SYRK schemes: I/O volumes.
// ---------------------------------------------------------------------------

TEST(SeqIo, NaiveIoIsQuadraticInN1) {
  // Row-pair streaming loads ≈ n2·n1²/2 words.
  const std::size_t n1 = 64, n2 = 16;
  Matrix a = random_matrix(n1, n2, 8);
  const auto r = seq_syrk_naive(a.view(), 4 * n2);
  const double expected = static_cast<double>(n2) * n1 * (n1 + 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(r.loads) / expected, 1.0, 0.1);
}

TEST(SeqIo, TriangleBeatsSquareByAboutSqrt2) {
  // The heart of the Beaumont result: at equal fast-memory size, triangle
  // blocking moves fewer words than square blocking, approaching the √2
  // factor on the A traffic as c grows (here c = 11: A ratio ≈ 1.37).
  const std::size_t n1 = 968, n2 = 64;  // 968 = 8·11²
  const std::uint64_t m = 3700;         // fits triangle sets with c = 11
  Matrix a = random_matrix(n1, n2, 9);
  const auto sq = seq_syrk_square(a.view(), m);
  const auto tr = seq_syrk_triangle(a.view(), m);
  EXPECT_LT(tr.total_io(), sq.total_io());
  const double a_ratio =
      static_cast<double>(sq.loads) / static_cast<double>(tr.loads);
  EXPECT_GT(a_ratio, 1.25);
  EXPECT_LT(a_ratio, std::sqrt(2.0) * 1.05);
  const double total_ratio =
      static_cast<double>(sq.total_io()) / static_cast<double>(tr.total_io());
  EXPECT_GT(total_ratio, 1.15);  // C stores dilute the A-traffic gain
}

TEST(SeqIo, TriangleNearLowerBound) {
  // Measured I/O of the triangle scheme should be within a modest factor of
  // the (1/√2)·n1²·n2/√M bound (finite-size effects: the c grid is coarse
  // and the +n1·n2 compulsory reads are not in the leading term).
  const std::size_t n1 = 968, n2 = 64;
  const std::uint64_t m = 3700;
  Matrix a = random_matrix(n1, n2, 10);
  const auto tr = seq_syrk_triangle(a.view(), m);
  const double lb = seq_syrk_io_lower_bound(n1, n2, m);
  EXPECT_GT(static_cast<double>(tr.total_io()), lb * 0.5);
  EXPECT_LT(static_cast<double>(tr.total_io()), lb * 3.0);
}

TEST(SeqIo, TriangleAMovementMatchesFormula) {
  // A-traffic of the triangle scheme is exactly (c+1)·n1·n2 loads; C adds
  // one store per output word.
  const std::size_t n1 = 144, n2 = 32;
  const std::uint64_t m = 4000;
  Matrix a = random_matrix(n1, n2, 11);
  const auto tr = seq_syrk_triangle(a.view(), m);
  const std::uint64_t c = tr.parameter;
  ASSERT_GT(c, 0u);
  EXPECT_EQ(tr.loads, (c + 1) * n1 * n2);
  EXPECT_EQ(tr.stores, n1 * (n1 + 1) / 2);
}

TEST(SeqIo, SquareAMovementMatchesFormula) {
  // With block size b | n1, loads = n2·b·(nblk² blocks read pairwise):
  // sum over I>=J of (bi + bj if I!=J else bi)·n2.
  const std::size_t n1 = 128, n2 = 16;
  const std::uint64_t m = 32 * 32 + 2 * 32;  // largest b with b²+2b <= m: 32
  Matrix a = random_matrix(n1, n2, 12);
  const auto sq = seq_syrk_square(a.view(), m);
  ASSERT_EQ(sq.parameter, 32u);
  const std::uint64_t nblk = n1 / 32;
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < nblk; ++i) {
    for (std::uint64_t j = 0; j <= i; ++j) {
      expected += (i == j ? 32u : 64u) * n2;
    }
  }
  EXPECT_EQ(sq.loads, expected);
}

TEST(SeqIo, LowerBoundFormulas) {
  EXPECT_DOUBLE_EQ(seq_syrk_io_lower_bound(100, 10, 50),
                   100.0 * 100.0 * 10.0 / std::sqrt(100.0));
  EXPECT_DOUBLE_EQ(seq_gemm_io_lower_bound(100, 10, 100),
                   2.0 * 100.0 * 100.0 * 10.0 / 10.0);
  // The 2^{3/2} gap between GEMM and SYRK sequential bounds.
  EXPECT_NEAR(seq_gemm_io_lower_bound(500, 80, 1000) /
                  seq_syrk_io_lower_bound(500, 80, 1000),
              std::pow(2.0, 1.5), 1e-9);
}

TEST(SeqIo, NaiveRejectsTinyMemory) {
  Matrix a = random_matrix(8, 100, 13);
  EXPECT_THROW(seq_syrk_naive(a.view(), 150), parsyrk::InvalidArgument);
}

TEST(SeqIo, TriangleRejectsImpossibleGeometry) {
  // n1 = 35 has no prime c with c² | n1 other than nothing — 35 = 5·7.
  Matrix a = random_matrix(35, 4, 14);
  EXPECT_THROW(seq_syrk_triangle(a.view(), 100000),
               parsyrk::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Sequential blocked Cholesky (SYRK's host kernel).
// ---------------------------------------------------------------------------

Matrix spd(std::size_t n, std::uint64_t seed) {
  Matrix g = syrk_reference(random_matrix(n, n + 3, seed).view());
  for (std::size_t i = 0; i < n; ++i) g(i, i) += static_cast<double>(n);
  return g;
}

class CholSchemes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(CholSchemes, TilePairFactorsCorrectly) {
  const auto [n, m] = GetParam();
  Matrix g = spd(n, 21);
  const auto r = seq_cholesky_tile_pair(g.view(), m);
  Matrix recon(n, n);
  gemm_nt(r.l.view(), r.l.view(), recon.view());
  EXPECT_LT(max_abs_diff_lower(recon.view(), g.view()), 1e-8);
}

TEST_P(CholSchemes, PanelResidentFactorsCorrectly) {
  const auto [n, m] = GetParam();
  Matrix g = spd(n, 22);
  const auto r = seq_cholesky_panel_resident(g.view(), m);
  Matrix recon(n, n);
  gemm_nt(r.l.view(), r.l.view(), recon.view());
  EXPECT_LT(max_abs_diff_lower(recon.view(), g.view()), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CholSchemes,
                         ::testing::Values(std::make_tuple(40, 400),
                                           std::make_tuple(64, 900),
                                           std::make_tuple(96, 2500),
                                           std::make_tuple(33, 3000)));

TEST(SeqChol, SchemesAgreeWithDirectFactor) {
  const std::size_t n = 48;
  Matrix g = spd(n, 23);
  const auto a = seq_cholesky_tile_pair(g.view(), 800);
  const auto b = seq_cholesky_panel_resident(g.view(), 800);
  EXPECT_LT(max_abs_diff_lower(a.l.view(), b.l.view()), 1e-9);
}

TEST(SeqChol, PanelResidentMovesFewerWords) {
  const std::size_t n = 160;
  const std::uint64_t m = 4000;
  Matrix g = spd(n, 24);
  const auto pair = seq_cholesky_tile_pair(g.view(), m);
  const auto panel = seq_cholesky_panel_resident(g.view(), m);
  EXPECT_LT(panel.total_io(), pair.total_io());
}

TEST(SeqChol, IoWithinFactorOfReference) {
  const std::size_t n = 160;
  const std::uint64_t m = 4000;
  Matrix g = spd(n, 25);
  const auto pair = seq_cholesky_tile_pair(g.view(), m);
  const double ref = seq_cholesky_io_reference(n, m);
  EXPECT_GT(static_cast<double>(pair.total_io()), 0.3 * ref);
  EXPECT_LT(static_cast<double>(pair.total_io()), 6.0 * ref);
}

TEST(SeqChol, BoundFormulasSqrtTwoApart) {
  EXPECT_NEAR(seq_cholesky_io_reference(100, 50) /
                  seq_cholesky_io_lower_bound(100, 50),
              std::sqrt(2.0), 1e-12);
}

TEST(SeqChol, RejectsIndefiniteMatrix) {
  Matrix g = Matrix::from_rows({{1, 2}, {2, 1}});
  EXPECT_THROW(seq_cholesky_tile_pair(g.view(), 100),
               parsyrk::InvalidArgument);
}

TEST(SeqIo, LruNaiveSyrkMissesNearStreamingVolume) {
  // Drive an LRU cache with the naive triple-loop access stream; with a
  // cache far smaller than a row of A the misses approach one per A access.
  // Capacity must exceed the per-pair working set (two rows + one C word =
  // 65 words) with slack, or LRU thrashes and every access misses.
  const std::size_t n1 = 48, n2 = 32;
  LruCache cache(100);
  // Address map: A row-major at 0, C packed after.
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k < n2; ++k) {
        cache.access(i * n2 + k);
        cache.access(j * n2 + k);
      }
      cache.access(n1 * n2 + i * (i + 1) / 2 + j);
    }
  }
  const double a_accesses = static_cast<double>(n1) * (n1 + 1) * n2;
  // Row i stays resident within the inner loops (64 >= 32 words) but row j
  // changes every iteration: misses ≈ half the A accesses.
  EXPECT_GT(static_cast<double>(cache.misses()), 0.35 * a_accesses);
  EXPECT_LT(static_cast<double>(cache.misses()), 0.75 * a_accesses);
}

}  // namespace
}  // namespace parsyrk::seqio
