// Tests for the §6 extensions: parallel SYR2K and SYMM on the triangle
// distribution, the butterfly exchange variant, memory-aware planning, and
// the schedule-analysis ablation machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baseline/gemm.hpp"
#include "bounds/schedule_analysis.hpp"
#include "bounds/syr2k_bounds.hpp"
#include "core/distributed.hpp"
#include "core/memory.hpp"
#include "core/session.hpp"
#include "core/symm.hpp"
#include "core/syr2k.hpp"
#include "core/syrk.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"

namespace parsyrk {
namespace {

constexpr double kTol = 1e-9;

// ---------------------------------------------------------------------------
// SYR2K kernels
// ---------------------------------------------------------------------------

TEST(Syr2kKernel, BlockedMatchesNaive) {
  Matrix a = random_matrix(37, 19, 601);
  Matrix b = random_matrix(37, 19, 602);
  Matrix c1(37, 37), c2(37, 37);
  syr2k_lower_naive(a.view(), b.view(), c1.view());
  syr2k_lower(a.view(), b.view(), c2.view());
  EXPECT_LT(max_abs_diff_lower(c1.view(), c2.view()), 1e-12);
}

TEST(Syr2kKernel, EqualsTwoGemms) {
  Matrix a = random_matrix(20, 8, 603);
  Matrix b = random_matrix(20, 8, 604);
  Matrix via_gemm(20, 20);
  gemm_nt(a.view(), b.view(), via_gemm.view());
  gemm_nt(b.view(), a.view(), via_gemm.view());
  Matrix ref = syr2k_reference(a.view(), b.view());
  EXPECT_LT(max_abs_diff(ref.view(), via_gemm.view()), 1e-12);
}

TEST(Syr2kKernel, SyrkIsHalfOfSyr2kWithSelf) {
  // SYR2K(A, A) = 2·SYRK(A).
  Matrix a = random_matrix(15, 6, 605);
  Matrix two_syrk = syrk_reference(a.view());
  for (std::size_t i = 0; i < two_syrk.rows(); ++i) {
    for (std::size_t j = 0; j < two_syrk.cols(); ++j) two_syrk(i, j) *= 2.0;
  }
  Matrix r2k = syr2k_reference(a.view(), a.view());
  EXPECT_LT(max_abs_diff(two_syrk.view(), r2k.view()), 1e-12);
}

// ---------------------------------------------------------------------------
// Parallel SYR2K
// ---------------------------------------------------------------------------

class Syr2kShapes : public ::testing::TestWithParam<
                        std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(Syr2kShapes, OneDMatchesReference) {
  const auto [n1, n2, p] = GetParam();
  Matrix a = random_matrix(n1, n2, 611);
  Matrix b = random_matrix(n1, n2, 612);
  comm::World world(p);
  Matrix c = core::syr2k_1d(world, a, b);
  EXPECT_LT(max_abs_diff(c.view(), syr2k_reference(a.view(), b.view()).view()),
            kTol);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Syr2kShapes,
                         ::testing::Values(std::make_tuple(8, 64, 4),
                                           std::make_tuple(13, 9, 5),
                                           std::make_tuple(20, 20, 1),
                                           std::make_tuple(5, 3, 7)));

class Syr2k2dShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(Syr2k2dShapes, TwoDMatchesReference) {
  const auto [n1, n2, c] = GetParam();
  Matrix a = random_matrix(n1, n2, 613);
  Matrix b = random_matrix(n1, n2, 614);
  comm::World world(static_cast<int>(c * (c + 1)));
  Matrix out = core::syr2k_2d(world, a, b, c);
  EXPECT_LT(
      max_abs_diff(out.view(), syr2k_reference(a.view(), b.view()).view()),
      kTol);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Syr2k2dShapes,
                         ::testing::Values(std::make_tuple(36, 8, 2),
                                           std::make_tuple(36, 5, 3),
                                           std::make_tuple(100, 3, 5),
                                           std::make_tuple(8, 13, 2)));

TEST(Syr2kParallel, ThreeDMatchesReference) {
  const std::size_t n1 = 24, n2 = 12;
  Matrix a = random_matrix(n1, n2, 615);
  Matrix b = random_matrix(n1, n2, 616);
  comm::World world(18);
  Matrix out = core::syr2k_3d(world, a, b, 2, 3);
  EXPECT_LT(
      max_abs_diff(out.view(), syr2k_reference(a.view(), b.view()).view()),
      kTol);
}

TEST(Syr2kParallel, TwoDMovesTwiceSyrk) {
  // Gathering both factors doubles the A-phase volume exactly.
  const std::size_t n1 = 108, n2 = 24;
  Matrix a = random_matrix(n1, n2, 617);
  Matrix b = random_matrix(n1, n2, 618);
  core::Session s1(12);
  const auto syrk_run = core::syrk(s1, core::SyrkRequest(a).use_2d(3));
  comm::World w2(12);
  core::syr2k_2d(w2, a, b, 3);
  EXPECT_EQ(2 * syrk_run.total.max.words_sent,
            w2.ledger().summary().max.words_sent);
}

TEST(Syr2kParallel, AttainsExtendedBound) {
  const std::size_t n1 = 600, n2 = 6;
  comm::World world(30);
  Matrix a = random_matrix(n1, n2, 619);
  Matrix b = random_matrix(n1, n2, 620);
  core::syr2k_2d(world, a, b, 5);
  const auto bound = bounds::syr2k_lower_bound(n1, n2, 30);
  ASSERT_EQ(bound.regime, bounds::Regime::kTwoD);
  const double measured =
      static_cast<double>(world.ledger().summary().critical_path_words());
  const double ratio = measured / bound.communicated;
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.4);
}

TEST(Syr2kParallel, HalvesGemmPairCommunication) {
  const std::size_t n1 = 242, n2 = 12;
  Matrix a = random_matrix(n1, n2, 621);
  Matrix b = random_matrix(n1, n2, 622);
  comm::World wt(132), wg(121);
  Matrix ct = core::syr2k_2d(wt, a, b, 11);
  Matrix cg = baseline::syr2k_gemm_baseline(wg, a, b, 11);
  EXPECT_LT(max_abs_diff(ct.view(), cg.view()), kTol);
  const double tri = static_cast<double>(wt.ledger().summary().max.words_sent);
  const double gem = static_cast<double>(wg.ledger().summary().max.words_sent);
  EXPECT_NEAR(gem / tri, 2.0, 0.15);
}

TEST(Syr2kBound, CaseBoundariesContinuous) {
  const std::uint64_t n1 = 1000, n2 = 1000000;
  const double pstar = 2.0 * n2 / std::sqrt(n1 * (n1 - 1.0));
  const auto below = bounds::syr2k_lower_bound(
      n1, n2, static_cast<std::uint64_t>(pstar * 0.999));
  const auto above = bounds::syr2k_lower_bound(
      n1, n2, static_cast<std::uint64_t>(pstar * 1.001) + 1);
  EXPECT_NEAR(below.w / above.w, 1.0, 0.01);
}

TEST(Syr2kBound, TwiceTheSyrkA_Term) {
  // In case 2 the SYR2K bound's leading term is 2·n1·n2/√P vs SYRK's.
  const auto s2 = bounds::syr2k_lower_bound(100000, 100, 64);
  const auto s1 = bounds::syrk_lower_bound(100000, 100, 64);
  ASSERT_EQ(s2.regime, bounds::Regime::kTwoD);
  EXPECT_NEAR(s2.communicated / s1.communicated, 2.0, 0.05);
}

// ---------------------------------------------------------------------------
// SYMM
// ---------------------------------------------------------------------------

TEST(SymmKernel, MatchesExplicitSymmetricProduct) {
  const std::size_t n = 12, m = 5;
  Matrix s = syrk_reference(random_matrix(n, 4, 631).view());  // SPD-ish
  Matrix b = random_matrix(n, m, 632);
  Matrix via_kernel = symm_reference(s.view(), b.view());
  Matrix bt = transpose(b.view());
  Matrix expected(n, m);
  gemm_nt(s.view(), bt.view(), expected.view());  // S·(Bᵀ)ᵀ = S·B
  EXPECT_LT(max_abs_diff(via_kernel.view(), expected.view()), 1e-12);
}

class SymmShapes : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(SymmShapes, TriangleSymmMatchesReference) {
  const auto [n, m, c] = GetParam();
  Matrix s = syrk_reference(random_matrix(n, 7, 633).view());
  Matrix b = random_matrix(n, m, 634);
  comm::World world(static_cast<int>(c * (c + 1)));
  Matrix out = core::symm_2d(world, s, b, c);
  EXPECT_LT(max_abs_diff(out.view(), symm_reference(s.view(), b.view()).view()),
            kTol);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SymmShapes,
                         ::testing::Values(std::make_tuple(36, 8, 2),
                                           std::make_tuple(36, 3, 3),
                                           std::make_tuple(100, 10, 5),
                                           std::make_tuple(16, 24, 2)));

TEST(Symm, IgnoresUpperTriangleOfS) {
  const std::size_t n = 36, m = 4;
  Matrix s = syrk_reference(random_matrix(n, 6, 635).view());
  Matrix b = random_matrix(n, m, 636);
  Matrix garbage = s;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) garbage(i, j) = 1e9;
  }
  comm::World world(6);
  Matrix out = core::symm_2d(world, garbage, b, 2);
  EXPECT_LT(max_abs_diff(out.view(), symm_reference(s.view(), b.view()).view()),
            kTol);
}

class Symm1dProcs : public ::testing::TestWithParam<int> {};

TEST_P(Symm1dProcs, MatchesReference) {
  const int p = GetParam();
  const std::size_t n = 18, m = 40;
  Matrix s = syrk_reference(random_matrix(n, 5, 671).view());
  Matrix b = random_matrix(n, m, 672);
  comm::World world(p);
  Matrix out = core::symm_1d(world, s, b);
  EXPECT_LT(
      max_abs_diff(out.view(), symm_reference(s.view(), b.view()).view()),
      kTol);
}

INSTANTIATE_TEST_SUITE_P(Procs, Symm1dProcs, ::testing::Values(1, 2, 5, 8));

TEST(Symm, OneDCommunicatesOnlyThePackedTriangle) {
  const std::size_t n = 16, m = 64;
  Matrix s = syrk_reference(random_matrix(n, 4, 673).view());
  Matrix b = random_matrix(n, m, 674);
  const int p = 4;
  comm::World world(p);
  core::symm_1d(world, s, b);
  // Each rank all-gathers the triangle: sends its own chunk to p−1 peers.
  const std::size_t tri = n * (n + 1) / 2;
  std::uint64_t total = 0;
  for (const auto& r : world.ledger().per_rank()) total += r.words_sent;
  EXPECT_EQ(total, (p - 1) * tri);
}

TEST(Symm, OneDIgnoresUpperTriangleOfS) {
  const std::size_t n = 12, m = 9;
  Matrix s = syrk_reference(random_matrix(n, 4, 675).view());
  Matrix garbage = s;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) garbage(i, j) = 1e9;
  }
  Matrix b = random_matrix(n, m, 676);
  comm::World world(3);
  Matrix out = core::symm_1d(world, garbage, b);
  EXPECT_LT(
      max_abs_diff(out.view(), symm_reference(s.view(), b.view()).view()),
      kTol);
}

TEST(Symm, BaselineMatchesReference) {
  const std::size_t n = 30, m = 8;
  Matrix s = syrk_reference(random_matrix(n, 5, 637).view());
  Matrix b = random_matrix(n, m, 638);
  comm::World world(9);
  Matrix out = baseline::symm_gemm_baseline(world, s, b, 3);
  EXPECT_LT(max_abs_diff(out.view(), symm_reference(s.view(), b.view()).view()),
            kTol);
}

TEST(Symm, TriangleMovesNoSAndBeatsGemmBaselineWhenNIsLarge) {
  // n >> m: the GEMM baseline hauls n²/√P-word S panels; triangle SYMM
  // moves only B and C rows.
  const std::size_t n = 242, m = 4;
  Matrix s = syrk_reference(random_matrix(n, 3, 639).view());
  Matrix b = random_matrix(n, m, 640);
  comm::World wt(132), wg(121);
  Matrix ct = core::symm_2d(wt, s, b, 11);
  Matrix cg = baseline::symm_gemm_baseline(wg, s, b, 11);
  EXPECT_LT(max_abs_diff(ct.view(), cg.view()), kTol);
  const auto tri = wt.ledger().summary().max.words_sent;
  const auto gem = wg.ledger().summary().max.words_sent;
  EXPECT_LT(tri * 4, gem);  // at n/m = 60 the S panels dominate heavily
}

// ---------------------------------------------------------------------------
// Butterfly exchange variant (§6)
// ---------------------------------------------------------------------------

TEST(Butterfly, TwoDSyrkCorrectAndLowLatency) {
  const std::size_t n1 = 108, n2 = 24;  // flat = 12·24 divisible by c+1 = 4
  Matrix a = random_matrix(n1, n2, 641);
  Matrix ref = syrk_reference(a.view());
  core::Session session(12);
  const auto runp = core::syrk(
      session,
      core::SyrkRequest(a).use_2d(3).with_exchange(
          core::ExchangeKind::kPairwise));
  const auto runb = core::syrk(
      session,
      core::SyrkRequest(a).use_2d(3).with_exchange(
          core::ExchangeKind::kButterfly));
  EXPECT_LT(max_abs_diff(runp.c.view(), ref.view()), kTol);
  EXPECT_LT(max_abs_diff(runb.c.view(), ref.view()), kTol);
  const auto& sp = runp.total;
  const auto& sb = runb.total;
  EXPECT_EQ(sp.max.msgs_sent, 11u);  // P − 1
  EXPECT_EQ(sb.max.msgs_sent, 4u);   // ceil(log2 12)
  EXPECT_GT(sb.max.words_sent, sp.max.words_sent);  // the bandwidth price
}

TEST(Butterfly, RejectsUnevenChunks) {
  Matrix a = random_matrix(18, 5, 642);  // flat = 2·5 = 10, not % (c+1) = 4
  core::Session session(12);
  EXPECT_THROW(
      core::syrk(session, core::SyrkRequest(a).use_2d(3).with_exchange(
                              core::ExchangeKind::kButterfly)),
      InvalidArgument);
}

// ---------------------------------------------------------------------------
// Memory model (§6)
// ---------------------------------------------------------------------------

TEST(Memory, FootprintFormulas) {
  core::Plan p1d;
  p1d.algorithm = core::Algorithm::kOneD;
  p1d.procs = 8;
  p1d.p2 = 8;
  EXPECT_DOUBLE_EQ(core::memory_footprint_per_rank(p1d, 100, 800),
                   100.0 * 800.0 / 8.0 + 100.0 * 101.0 / 2.0);

  core::Plan p2d;
  p2d.algorithm = core::Algorithm::kTwoD;
  p2d.c = 3;
  p2d.p1 = 12;
  p2d.p2 = 1;
  p2d.procs = 12;
  const double nb = 90.0 / 9.0;
  const double expect = 2.0 * (3.0 * nb * 40.0) +
                        3.0 * nb * nb + nb * (nb + 1.0) / 2.0;
  EXPECT_DOUBLE_EQ(core::memory_footprint_per_rank(p2d, 90, 40), expect);
}

TEST(Memory, DependentBoundFormula) {
  EXPECT_DOUBLE_EQ(core::syrk_memory_dependent_bound(100, 10, 4, 50),
                   100.0 * 100.0 * 10.0 /
                       (std::sqrt(2.0) * 4.0 * std::sqrt(50.0)));
}

TEST(Memory, CombinedBoundTakesMax) {
  // Tiny memory: the memory-dependent term dominates; huge memory: the
  // memory-independent Theorem 1 term does.
  const std::uint64_t n1 = 1000, n2 = 1000, p = 64;
  const double mi = bounds::syrk_lower_bound(n1, n2, p).communicated;
  EXPECT_GT(core::syrk_combined_bound(n1, n2, p, 100), mi);
  EXPECT_DOUBLE_EQ(core::syrk_combined_bound(n1, n2, p, 1u << 30), mi);
}

TEST(Memory, AwarePlannerPrefersCheapestFittingPlan) {
  // Plenty of memory: picks the (3D) plan with minimum predicted words.
  const auto plenty =
      core::plan_syrk_memory_aware(144, 144, 24, 1u << 30);
  ASSERT_TRUE(plenty.has_value());
  EXPECT_EQ(plenty->plan.algorithm, core::Algorithm::kThreeD);

  // The 1D plan needs ~n1²/2 + n1·n2/P ≈ 11.3k words; cap memory below
  // that but above the best 3D footprint (~7.1k): 1D must be excluded.
  const auto tight = core::plan_syrk_memory_aware(144, 144, 24, 8000);
  ASSERT_TRUE(tight.has_value());
  EXPECT_NE(tight->plan.algorithm, core::Algorithm::kOneD);
  EXPECT_LE(tight->footprint_words, 8000.0);

  // Absurdly small memory: nothing fits.
  EXPECT_FALSE(core::plan_syrk_memory_aware(144, 144, 24, 10).has_value());
}

TEST(Memory, FootprintsFitTheChosenLimit) {
  for (std::uint64_t mem : {4000, 8000, 20000, 100000}) {
    const auto plan = core::plan_syrk_memory_aware(180, 360, 48, mem);
    if (!plan) continue;
    EXPECT_LE(plan->footprint_words, static_cast<double>(mem));
  }
}

// ---------------------------------------------------------------------------
// Distributed-result API
// ---------------------------------------------------------------------------

TEST(Distributed, AssembleMatchesReference) {
  const std::size_t n1 = 72, n2 = 10;
  Matrix a = random_matrix(n1, n2, 651);
  comm::World world(12);
  auto result = core::DistributedSyrkResult::compute_2d(world, a, 3);
  Matrix ref = syrk_reference(a.view());
  EXPECT_LT(max_abs_diff(result.assemble().view(), ref.view()), kTol);
}

TEST(Distributed, ElementLookupOnOwner) {
  const std::size_t n1 = 36, n2 = 6;
  Matrix a = random_matrix(n1, n2, 652);
  comm::World world(6);
  auto result = core::DistributedSyrkResult::compute_2d(world, a, 2);
  Matrix ref = syrk_reference(a.view());
  for (std::size_t i = 0; i < n1; i += 5) {
    for (std::size_t j = 0; j < n1; j += 7) {
      EXPECT_NEAR(result.at(i, j), ref(i, j), 1e-10) << i << "," << j;
    }
  }
}

TEST(Distributed, GatherToRootPaysTheFunnel) {
  const std::size_t n1 = 72, n2 = 10;
  Matrix a = random_matrix(n1, n2, 653);
  comm::World world(12);
  auto result = core::DistributedSyrkResult::compute_2d(world, a, 3);
  const auto before = world.ledger().summary().total.words_sent;
  Matrix gathered = result.gather_to_root(world, 0);
  EXPECT_LT(max_abs_diff(gathered.view(), syrk_reference(a.view()).view()),
            kTol);
  const auto funnel = world.ledger().summary("gather_result");
  // The root receives everything but its own blocks: the full triangle plus
  // the upper halves of the off-diagonal diagonal-blocks... exactly the
  // flattened block words of 11 ranks.
  std::uint64_t expected = 0;
  for (int r = 1; r < 12; ++r) {
    const auto& local = result.local(r);
    expected += core::internal::flatten_triangle_blocks(local).size();
  }
  EXPECT_EQ(funnel.total.words_sent - 0, expected);
  EXPECT_GT(world.ledger().summary().total.words_sent, before);
}

TEST(Distributed, AccumulateBatchesEqualsOneBigSyrk) {
  // Streaming rank-k updates: SYRK over two column batches accumulated
  // into the distributed result equals one SYRK over the concatenation.
  const std::size_t n1 = 36, k1 = 8, k2 = 5;
  Matrix all = random_matrix(n1, k1 + k2, 655);
  Matrix batch1 = ConstMatrixView(all.view().block(0, 0, n1, k1)).to_matrix();
  Matrix batch2 =
      ConstMatrixView(all.view().block(0, k1, n1, k2)).to_matrix();
  comm::World world(6);
  auto result = core::DistributedSyrkResult::compute_2d(world, batch1, 2);
  result.accumulate_2d(world, batch2, /*alpha=*/1.0, /*beta=*/1.0);
  Matrix ref = syrk_reference(all.view());
  EXPECT_LT(max_abs_diff(result.assemble().view(), ref.view()), kTol);
}

TEST(Distributed, AccumulateAlphaBetaScaling) {
  // C := 2·A₂A₂ᵀ + 0.5·(A₁A₁ᵀ).
  const std::size_t n1 = 36;
  Matrix a1 = random_matrix(n1, 6, 656);
  Matrix a2 = random_matrix(n1, 4, 657);
  comm::World world(6);
  auto result = core::DistributedSyrkResult::compute_2d(world, a1, 2);
  result.accumulate_2d(world, a2, 2.0, 0.5);
  Matrix r1 = syrk_reference(a1.view());
  Matrix r2 = syrk_reference(a2.view());
  Matrix expected(n1, n1);
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t j = 0; j < n1; ++j) {
      expected(i, j) = 0.5 * r1(i, j) + 2.0 * r2(i, j);
    }
  }
  EXPECT_LT(max_abs_diff(result.assemble().view(), expected.view()), kTol);
}

TEST(Distributed, AccumulateRejectsMismatchedRows) {
  comm::World world(6);
  auto result = core::DistributedSyrkResult::compute_2d(
      world, random_matrix(36, 4, 658), 2);
  Matrix wrong = random_matrix(40, 4, 659);
  EXPECT_THROW(result.accumulate_2d(world, wrong, 1.0, 1.0),
               InvalidArgument);
}

TEST(FromRoot, ScatterThenSyrkMatchesReference) {
  const std::size_t n1 = 20, n2 = 50;
  Matrix a = random_matrix(n1, n2, 660);
  core::Session session(5);
  const auto run =
      core::syrk(session, core::SyrkRequest(a).use_1d().from_root(2));
  EXPECT_LT(max_abs_diff(run.c.view(), syrk_reference(a.view()).view()), kTol);
}

TEST(FromRoot, ScatterCostIsVisibleAndAttributed) {
  const std::size_t n1 = 16, n2 = 40;
  const int p = 8;
  Matrix a = random_matrix(n1, n2, 661);
  core::Session session(p);
  const auto run =
      core::syrk(session, core::SyrkRequest(a).use_1d().from_root(0));
  const auto& scatter = run.scatter_a;
  // The root ships every column block but its own: n1·(n2 − n2/P) words.
  EXPECT_EQ(scatter.max.words_sent, n1 * (n2 - n2 / p));
  EXPECT_EQ(scatter.total.words_sent, scatter.max.words_sent);  // root only
  // The algorithm phase is unchanged by the ingestion.
  EXPECT_GT(run.reduce_c.max.words_sent, 0u);
}

TEST(Distributed, LocalBlocksFollowTheDistribution) {
  const std::size_t n1 = 48, n2 = 4;
  Matrix a = random_matrix(n1, n2, 654);
  comm::World world(6);
  auto result = core::DistributedSyrkResult::compute_2d(world, a, 2);
  dist::TriangleBlockDistribution d(2);
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(result.local(r).pairs, d.owned_pairs(r));
    EXPECT_EQ(result.local(r).diag_index.has_value(),
              d.diagonal_block(r).has_value());
  }
}

// ---------------------------------------------------------------------------
// Schedule analysis
// ---------------------------------------------------------------------------

TEST(Schedule, TriangleAssignmentNearLemma6Optimum) {
  dist::TriangleBlockDistribution d(3);
  const std::uint64_t n1 = 72, n2 = 24;
  const auto stats = bounds::analyze_column_schedule(
      n1, n2, 12, bounds::triangle_block_assignment(d, n1));
  // Perfectly balanced up to the diagonal blocks, and within ~25% of the
  // Lemma 6 data optimum at this modest size.
  EXPECT_LT(stats.balance, 1.20);
  EXPECT_LT(stats.data_vs_optimum, 1.30);
  EXPECT_GE(stats.data_vs_optimum, 1.0 - 1e-9);
}

TEST(Schedule, BlockRowNeedsMoreData) {
  const std::uint64_t n1 = 72, n2 = 24;
  dist::TriangleBlockDistribution d(3);
  const auto tri = bounds::analyze_column_schedule(
      n1, n2, 12, bounds::triangle_block_assignment(d, n1));
  const auto rows = bounds::analyze_column_schedule(
      n1, n2, 12, bounds::block_row_assignment(n1, 12));
  // Block rows of C require (almost) all rows of A on the bottom processor.
  EXPECT_GT(rows.max_a_elements, 2 * tri.max_a_elements);
}

TEST(Schedule, RandomAssignmentIsWorst) {
  const std::uint64_t n1 = 72, n2 = 24;
  dist::TriangleBlockDistribution d(3);
  const auto tri = bounds::analyze_column_schedule(
      n1, n2, 12, bounds::triangle_block_assignment(d, n1));
  const auto rnd = bounds::analyze_column_schedule(
      n1, n2, 12, bounds::random_assignment(12, 99));
  // A random owner per block touches ~every row of A on every processor.
  EXPECT_GT(rnd.max_a_elements, 2 * tri.max_a_elements);
  EXPECT_NEAR(static_cast<double>(rnd.max_a_elements), n1 * n2, n1 * n2 * 0.1);
}

TEST(Schedule, CyclicBalancedButDataHungry) {
  const std::uint64_t n1 = 72, n2 = 24;
  const auto cyc = bounds::analyze_column_schedule(
      n1, n2, 12, bounds::cyclic_assignment(12));
  EXPECT_LT(cyc.balance, 1.05);
  EXPECT_NEAR(static_cast<double>(cyc.max_a_elements), n1 * n2,
              n1 * n2 * 0.05);
}

TEST(Schedule, GridAssignmentBetweenTriangleAndRandom) {
  const std::uint64_t n1 = 72, n2 = 24;
  dist::TriangleBlockDistribution d(3);
  const auto tri = bounds::analyze_column_schedule(
      n1, n2, 12, bounds::triangle_block_assignment(d, n1));
  // 4×4 grid = 16 procs; compare data-vs-optimum ratios (P differs).
  const auto grid = bounds::analyze_column_schedule(
      n1, n2, 16, bounds::grid_assignment(n1, 4));
  EXPECT_GT(grid.data_vs_optimum, tri.data_vs_optimum);
}

TEST(Schedule3D, TriangleScheduleNearCase3Optimum) {
  // The 3D algorithm's computation assignment (triangle blocks × k-slices)
  // sits close to the case-3 Lemma 6 optimum.
  const std::uint64_t n1 = 48, n2 = 48, p2 = 3;
  dist::TriangleBlockDistribution d(2);  // p1 = 6, P = 18
  const auto stats = bounds::analyze_point_schedule(
      n1, n2, 18, bounds::triangle_3d_assignment(d, n1, n2, p2));
  EXPECT_LT(stats.balance, 1.25);
  EXPECT_GE(stats.data_vs_optimum, 1.0 - 1e-9);
  EXPECT_LT(stats.data_vs_optimum, 1.6);
}

TEST(Schedule3D, GridScheduleNeedsMoreData) {
  const std::uint64_t n1 = 48, n2 = 48;
  dist::TriangleBlockDistribution d(2);
  const auto tri = bounds::analyze_point_schedule(
      n1, n2, 18, bounds::triangle_3d_assignment(d, n1, n2, 3));
  // 3×3×2 grid = 18 procs, matched count.
  const auto grid = bounds::analyze_point_schedule(
      n1, n2, 18, bounds::grid_3d_assignment(n1, n2, 3, 2));
  EXPECT_GT(grid.data_vs_optimum, tri.data_vs_optimum);
}

TEST(Schedule3D, SplittingKReducesPerProcessorData) {
  // The point of the 3D regime: at large P, k-unsplit schedules hit the
  // x2 >= tri/2P wall; splitting k lowers the busiest processor's data.
  const std::uint64_t n1 = 48, n2 = 48;
  dist::TriangleBlockDistribution d(2);
  const auto flat = bounds::analyze_column_schedule(
      n1, n2, 6, bounds::triangle_block_assignment(d, n1));
  const auto split = bounds::analyze_point_schedule(
      n1, n2, 18, bounds::triangle_3d_assignment(d, n1, n2, 3));
  EXPECT_LT(split.max_data, flat.max_data);
}

TEST(Schedule, RejectsOutOfRangeAssignment) {
  EXPECT_DEATH(bounds::analyze_column_schedule(
                   8, 4, 2, [](std::uint64_t, std::uint64_t) { return 7; }),
               "assignment out of range");
}

}  // namespace
}  // namespace parsyrk
