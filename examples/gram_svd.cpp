// Gram SVD: singular values and vectors via the Gram matrix (§1's third
// motivating application).
//
// For a tall-skinny A (n×k, n >> k): G = AᵀA is a SYRK on Aᵀ; the
// eigendecomposition G = V·Λ·Vᵀ (cyclic Jacobi) gives the singular values
// σ_j = √λ_j, right vectors V, and left vectors U = A·V·Σ⁻¹. Verified
// against ‖A − U·Σ·Vᵀ‖ and the orthogonality of U and V.
//
//   $ ./examples/gram_svd [rows] [cols] [procs]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/session.hpp"
#include "matrix/factor.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1200;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
  const std::uint64_t p = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;

  std::cout << "Gram SVD of a " << n << "x" << k << " matrix on up to " << p
            << " processors\n\n";

  // A with a known spectrum: scale the columns of a random matrix so the
  // singular values spread over two decades.
  Matrix a = random_matrix(n, k, 77);
  for (std::size_t j = 0; j < k; ++j) {
    const double scale = std::pow(10.0, 2.0 * j / (k - 1));
    for (std::size_t i = 0; i < n; ++i) a(i, j) *= scale;
  }

  // G = AᵀA: SYRK on Aᵀ (k×n, short-wide → 1D algorithm).
  Matrix at = transpose(a.view());
  core::Session session(static_cast<int>(p));
  const core::SyrkRun run = core::syrk(session, core::SyrkRequest(at));
  std::cout << "Gram SYRK plan: " << run.plan << " — communicated "
            << run.total.critical_path_words() << " words/rank\n\n";

  auto eig = jacobi_eigen_symmetric(run.c.view());
  std::vector<double> sigma(k);
  for (std::size_t j = 0; j < k; ++j) {
    sigma[j] = std::sqrt(std::max(0.0, eig.values[j]));
  }

  // U = A·V·Σ⁻¹ (n×k).
  Matrix vt = transpose(eig.vectors.view());
  Matrix u(n, k);
  gemm_nt(a.view(), vt.view(), u.view());  // A·V
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) u(i, j) /= sigma[j];
  }

  // Reconstruction: A ≈ U·Σ·Vᵀ  (U·Σ then ·Vᵀ = gemm_nt with V).
  Matrix us = u;
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) us(i, j) *= sigma[j];
  }
  Matrix recon(n, k);
  gemm_nt(us.view(), eig.vectors.view(), recon.view());
  const double resid =
      max_abs_diff(recon.view(), a.view()) / frobenius_norm(a.view());

  // Orthogonality of U: UᵀU = I.
  Matrix ut = transpose(u.view());
  Matrix utu = syrk_reference(ut.view());
  double orth = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      orth = std::max(orth, std::abs(utu(i, j) - (i == j ? 1.0 : 0.0)));
    }
  }

  Table t({"check", "value"});
  t.add_row({"largest sigma", fmt_double(sigma[0], 6)});
  t.add_row({"smallest sigma", fmt_double(sigma[k - 1], 6)});
  t.add_row({"‖A − UΣVᵀ‖_max / ‖A‖_F", fmt_double(resid, 4)});
  t.add_row({"max |UᵀU − I|", fmt_double(orth, 4)});
  t.add_row({"Jacobi sweeps", std::to_string(eig.sweeps)});
  t.print(std::cout);

  // The squared condition number of the Gram approach costs accuracy on the
  // small singular values — tolerate ~cond²·eps.
  const bool ok = resid < 1e-9 && orth < 1e-6;
  std::cout << "\nGram SVD " << (ok ? "PASSED" : "FAILED") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
