// Quickstart: plan and run a communication-optimal parallel SYRK, inspect
// the measured communication, and compare it against the Theorem 1 bound.
//
//   $ ./examples/quickstart [n1] [n2] [max_procs]
#include <cstdlib>
#include <iostream>

#include "core/session.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main(int argc, char** argv) {
  const std::size_t n1 = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 144;
  const std::size_t n2 = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 96;
  const std::uint64_t p = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 12;

  std::cout << "SYRK: C = A·Aᵀ with A " << n1 << "x" << n2 << " on up to "
            << p << " processors\n\n";

  // 1. Make an input matrix (any data source works; rows are observations).
  Matrix a = random_matrix(n1, n2, /*seed=*/42);

  // 2. Open a session (a warm pool of p workers) and let the planner pick
  //    the algorithm + grid per the paper's §5.4. Further requests on the
  //    same session reuse the parked workers — no thread churn per call.
  core::Session session(static_cast<int>(p));
  const core::SyrkRun run = core::syrk(session, core::SyrkRequest(a));

  std::cout << "Plan: " << run.plan << "\n";
  std::cout << "Result: " << run.c.rows() << "x" << run.c.cols()
            << " symmetric matrix\n\n";

  // 3. Validate against the serial reference.
  Matrix ref = syrk_reference(a.view());
  const double err = max_abs_diff(run.c.view(), ref.view());
  std::cout << "max |C - A·Aᵀ| = " << err << "\n\n";

  // 4. Inspect the communication the run actually performed.
  Table t({"phase", "max words/rank", "max msgs/rank"});
  t.add_row({"gather A (All-to-All)",
             std::to_string(run.gather_a.max.words_sent),
             std::to_string(run.gather_a.max.msgs_sent)});
  t.add_row({"reduce C (Reduce-Scatter)",
             std::to_string(run.reduce_c.max.words_sent),
             std::to_string(run.reduce_c.max.msgs_sent)});
  t.add_row({"total", std::to_string(run.total.max.words_sent),
             std::to_string(run.total.max.msgs_sent)});
  t.print(std::cout);

  std::cout << "\nTheorem 1 lower bound at P = " << run.plan.procs << " ("
            << bounds::regime_name(run.bound.regime)
            << " case): " << fmt_double(run.bound.communicated, 6)
            << " words;  measured/bound = "
            << fmt_double(static_cast<double>(
                              run.total.critical_path_words()) /
                              run.bound.communicated,
                          4)
            << "\n";
  return err < 1e-9 ? EXIT_SUCCESS : EXIT_FAILURE;
}
