// CholeskyQR: the paper's motivating tall-skinny application (§1).
//
// Computes a QR factorization of a tall-skinny A via the Gram matrix:
//   G = AᵀA           (a SYRK on Aᵀ — computed with the 2D triangle-block
//                      algorithm, where the communication saving matters)
//   G = RᵀR           (serial Cholesky of the small k×k Gram matrix)
//   Q = A·R⁻¹          (triangular solve applied to the tall factor)
// and verifies ‖QᵀQ − I‖ and ‖A − QR‖.
//
//   $ ./examples/cholesky_qr [rows] [cols]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/session.hpp"
#include "matrix/factor.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

namespace {

/// Solves x·Lᵀ = b row-wise, i.e. computes Q = A·(Lᵀ)⁻¹ = A·L⁻ᵀ.
Matrix solve_triangular_rt(const Matrix& a, const Matrix& l) {
  const std::size_t m = a.rows(), n = a.cols();
  Matrix q(m, n);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = a(r, j);
      for (std::size_t k = 0; k < j; ++k) s -= q(r, k) * l(j, k);
      q(r, j) = s / l(j, j);
    }
  }
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 900;
  const std::size_t cols = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 18;
  std::cout << "CholeskyQR of a " << rows << "x" << cols
            << " tall-skinny matrix\n\n";

  Matrix a = random_matrix(rows, cols, 7);
  // Condition the columns so the Gram matrix is comfortably SPD.
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < rows; ++i) a(i, j) += (i == j % rows) ? 4.0 : 0.0;
  }

  // G = AᵀA is a SYRK on B = Aᵀ (n1 = cols, n2 = rows — short and wide, so
  // the planner picks the regime the bound dictates; for a tall-skinny A
  // the Gram SYRK is the 1D/short-wide case).
  Matrix at = transpose(a.view());
  core::Session session(/*num_ranks=*/8);
  const core::SyrkRun run = core::syrk(session, core::SyrkRequest(at));
  std::cout << "Gram SYRK plan: " << run.plan << "\n";
  std::cout << "Gram SYRK communication: "
            << run.total.critical_path_words() << " words/rank (bound "
            << fmt_double(run.bound.communicated, 6) << ")\n\n";

  Matrix l = cholesky_lower(run.c.view());
  Matrix q = solve_triangular_rt(a, l);

  // Accuracy: QᵀQ = I and A = Q·Lᵀ.
  Matrix qt = transpose(q.view());
  Matrix qtq = syrk_reference(qt.view());
  double orth = 0.0;
  for (std::size_t i = 0; i < cols; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      orth = std::max(orth, std::abs(qtq(i, j) - (i == j ? 1.0 : 0.0)));
    }
  }
  Matrix recon(rows, cols);
  gemm_nt(q.view(), l.view(), recon.view());  // Q·Lᵀ via gemm_nt(Q, L)
  const double resid = max_abs_diff(recon.view(), a.view()) /
                       frobenius_norm(a.view());

  Table t({"check", "value"});
  t.add_row({"max |QᵀQ − I|", fmt_double(orth, 4)});
  t.add_row({"‖A − QR‖_max / ‖A‖_F", fmt_double(resid, 4)});
  t.print(std::cout);

  const bool ok = orth < 1e-8 && resid < 1e-10;
  std::cout << "\nCholeskyQR " << (ok ? "PASSED" : "FAILED") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
