// Streaming covariance: batches of observations arrive over time; the
// distributed Gram/covariance matrix is updated in place with the BLAS-style
// accumulate (C := α·A_batchA_batchᵀ + β·C) while it never leaves its
// owners. This is the streaming pattern SYRK serves in practice — each
// batch costs one All-to-All of the batch, and the n²-sized state is never
// funnelled anywhere until the final explicit (and deliberately expensive)
// gather.
//
//   $ ./examples/streaming_covariance [features] [batches] [batch_cols]
#include <cstdlib>
#include <iostream>

#include "core/distributed.hpp"
#include "core/session.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main(int argc, char** argv) {
  const std::size_t d = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 72;
  const std::size_t batches =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;
  const std::size_t bcols = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 32;
  const std::uint64_t c = 3;  // 12-rank triangle grid

  std::cout << "Streaming SYRK: " << batches << " batches of " << bcols
            << " observations over " << d << " features, P = 12\n\n";

  // One session for the whole stream: every batch update is another job on
  // the same warm 12-rank pool.
  core::Session session(12);
  comm::World& world = session.world();
  // All data, for the one-shot reference.
  Matrix all = random_matrix(d, batches * bcols, 2025);

  // Batch 0 creates the distributed state; the rest accumulate into it.
  Matrix first = ConstMatrixView(all.view().block(0, 0, d, bcols)).to_matrix();
  auto state = core::DistributedSyrkResult::compute_2d(world, first, c);
  const auto words_batch0 = world.ledger().summary().total.words_sent;
  for (std::size_t b = 1; b < batches; ++b) {
    Matrix batch =
        ConstMatrixView(all.view().block(0, b * bcols, d, bcols)).to_matrix();
    state.accumulate_2d(world, batch, /*alpha=*/1.0, /*beta=*/1.0);
  }
  const auto words_stream = world.ledger().summary().total.words_sent;

  // Validate against the one-shot SYRK over all columns.
  Matrix ref = syrk_reference(all.view());
  const double err = max_abs_diff(state.assemble().view(), ref.view());

  // The explicit gather at the end is where the n²/2 funnel cost lives.
  Matrix gathered = state.gather_to_root(world, 0);
  const auto funnel = world.ledger().summary("gather_result");

  Table t({"quantity", "value"});
  t.add_row({"words, first batch (total over ranks)",
             fmt_count(words_batch0)});
  t.add_row({"words, all " + std::to_string(batches) + " batches",
             fmt_count(words_stream)});
  t.add_row({"words per batch (steady state)",
             fmt_count((words_stream - words_batch0) / (batches - 1))});
  t.add_row({"words, final gather of C", fmt_count(funnel.total.words_sent)});
  t.add_row({"max |streamed − one-shot|", fmt_double(err, 4)});
  t.print(std::cout);

  const bool ok = err < 1e-9 &&
                  max_abs_diff(gathered.view(), ref.view()) < 1e-9;
  std::cout << "\nStreaming covariance " << (ok ? "PASSED" : "FAILED")
            << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
