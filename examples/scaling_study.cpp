// Scaling study: sweeps the processor count for a fixed problem and shows
// the planner switching algorithms (1D → 3D, or 2D → 3D) exactly where
// Theorem 1's cases change, with measured communication tracking the bound
// throughout — the end-to-end picture of the paper's results.
//
//   $ ./examples/scaling_study [n1] [n2]
#include <cstdlib>
#include <iostream>

#include "core/session.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main(int argc, char** argv) {
  const std::size_t n1 = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 180;
  const std::size_t n2 = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 360;

  std::cout << "Strong-scaling sweep for SYRK with A " << n1 << "x" << n2
            << "\n\n";

  Matrix a = random_matrix(n1, n2, 11);
  Matrix ref = syrk_reference(a.view());

  Table t({"P req", "P used", "algorithm", "bound case", "grid",
           "measured words/rank", "bound words", "meas/bound", "correct"});
  bool all_ok = true;
  // One warm session sized for the largest sweep point; each request caps
  // the planner at its own P, so all eight runs share the parked workers.
  core::Session session(128);
  for (std::uint64_t p : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const auto run =
        core::syrk(session, core::SyrkRequest(a).on_procs(p));
    const double err = max_abs_diff(run.c.view(), ref.view());
    const double measured =
        static_cast<double>(run.total.critical_path_words());
    const std::string grid =
        run.plan.c != 0 ? std::to_string(run.plan.p1) + "x" +
                              std::to_string(run.plan.p2)
                        : "1x" + std::to_string(run.plan.p2);
    const double mb = run.bound.communicated > 0
                          ? measured / run.bound.communicated
                          : 0.0;
    all_ok = all_ok && err < 1e-9;
    t.add_row({std::to_string(p), std::to_string(run.plan.procs),
               core::algorithm_name(run.plan.algorithm),
               bounds::regime_name(run.plan.regime), grid,
               fmt_double(measured, 8), fmt_double(run.bound.communicated, 8),
               run.bound.communicated > 0 ? fmt_double(mb, 4) : "-",
               err < 1e-9 ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::cout << "\nAll runs correct: " << (all_ok ? "yes" : "NO") << "\n";
  return all_ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
