// Normal equations: least-squares via SYRK (the short-wide motivating
// application of §1).
//
// Solves min_x ‖Aᵀx − b‖₂ for a short-wide data matrix A (d features × N
// samples): the Gram matrix G = A·Aᵀ is a case-1 SYRK (1D algorithm — only
// the d(d+1)/2 triangle is ever communicated), then G·x = A·b is solved by
// Cholesky.
//
//   $ ./examples/normal_equations [features] [samples] [procs]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/session.hpp"
#include "matrix/factor.hpp"
#include "matrix/kernels.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main(int argc, char** argv) {
  const std::size_t d = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 30000;
  const std::uint64_t p = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;

  std::cout << "Least squares with " << d << " features over " << n
            << " samples on " << p << " processors\n\n";

  // Ground truth: observations y = Aᵀ·x* + noise.
  Rng rng(4242);
  Matrix a(d, n);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  }
  std::vector<double> x_true(d);
  for (auto& x : x_true) x = rng.uniform(-3, 3);
  std::vector<double> y(n);
  for (std::size_t s = 0; s < n; ++s) {
    double acc = 0.1 * rng.normal();  // noise
    for (std::size_t i = 0; i < d; ++i) acc += a(i, s) * x_true[i];
    y[s] = acc;
  }

  // G = A·Aᵀ via the planner (case 1 → 1D algorithm).
  core::Session session(static_cast<int>(p));
  const core::SyrkRun run = core::syrk(session, core::SyrkRequest(a));
  std::cout << "Gram SYRK plan: " << run.plan << "\n";
  std::cout << "Communication: " << run.total.critical_path_words()
            << " words/rank — the " << n << "-sample data never moves, only "
            << "the " << d * (d + 1) / 2 << "-word triangle.\n\n";

  // rhs = A·y; then x = G⁻¹·rhs by Cholesky.
  std::vector<double> rhs(d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t s = 0; s < n; ++s) rhs[i] += a(i, s) * y[s];
  }
  Matrix l = cholesky_lower(run.c.view());
  auto x = cholesky_solve(l.view(), rhs);

  // Check: estimate close to x*, and the residual orthogonal to the rows.
  double max_coef_err = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    max_coef_err = std::max(max_coef_err, std::abs(x[i] - x_true[i]));
  }
  std::vector<double> grad(d, 0.0);  // A·(Aᵀx − y) must vanish
  for (std::size_t s = 0; s < n; ++s) {
    double r = -y[s];
    for (std::size_t i = 0; i < d; ++i) r += a(i, s) * x[i];
    for (std::size_t i = 0; i < d; ++i) grad[i] += a(i, s) * r;
  }
  double max_grad = 0.0;
  for (double g : grad) max_grad = std::max(max_grad, std::abs(g));

  Table t({"check", "value"});
  t.add_row({"max |x̂ − x*| (sampling noise ~0.1/√N)",
             fmt_double(max_coef_err, 4)});
  t.add_row({"max |Aᵀ(Ax̂ − y)| (normal-equation residual)",
             fmt_double(max_grad, 4)});
  t.print(std::cout);

  const bool ok = run.plan.algorithm == core::Algorithm::kOneD &&
                  max_coef_err < 0.05 && max_grad < 1e-6;
  std::cout << "\nNormal equations " << (ok ? "PASSED" : "FAILED") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
