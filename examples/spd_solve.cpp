// End-to-end SPD solve: parallel SYRK builds the Gram system, parallel tile
// Cholesky factors it, triangular solves finish — the full pipeline the
// paper's introduction describes, running on one runtime with one ledger.
//
//   $ ./examples/spd_solve [n] [k] [grid]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/cholesky.hpp"
#include "core/session.hpp"
#include "matrix/factor.hpp"
#include "matrix/kernels.hpp"
#include "matrix/random.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 144;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 160;
  const std::uint64_t r = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 3;

  std::cout << "SPD solve: G = A·Aᵀ + n·I with A " << n << "x" << k
            << ", factored on a " << r << "x" << r << " grid\n\n";

  // 1. Build the SPD system matrix with the communication-optimal SYRK.
  //    The whole pipeline shares one session: the SYRK request and the
  //    Cholesky below run back-to-back on the same warm workers.
  Matrix a = random_matrix(n, k, 99);
  core::Session session(static_cast<int>(r * r));
  const core::SyrkRun syrk = core::syrk(session, core::SyrkRequest(a));
  Matrix g = syrk.c;
  for (std::size_t i = 0; i < n; ++i) g(i, i) += static_cast<double>(n);
  std::cout << "SYRK plan: " << syrk.plan << " ("
            << syrk.total.critical_path_words() << " words/rank)\n";

  // 2. Factor with the distributed tile Cholesky on the session's world,
  //    scoping the ledger to the Cholesky job alone.
  comm::World& world = session.world();
  const auto pre_chol = world.ledger().snapshot();
  Matrix l = core::parallel_cholesky(world, g, r, /*tile=*/n / (2 * r));
  const auto chol_words =
      world.ledger().summary_since(pre_chol).critical_path_words();
  std::cout << "Cholesky communication: " << chol_words << " words/rank ("
            << world.ledger().summary_since(pre_chol, "bcast_panel")
                   .max.words_sent
            << " in panel broadcasts)\n\n";

  // 3. Solve G·x = b and verify.
  Rng rng(100);
  std::vector<double> x_true(n);
  for (auto& x : x_true) x = rng.uniform(-1, 1);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += g(i, j) * x_true[j];
  }
  auto x = cholesky_solve(l.view(), b);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err = std::max(err, std::abs(x[i] - x_true[i]));
  }

  Matrix recon(n, n);
  gemm_nt(l.view(), l.view(), recon.view());
  const double factor_err = max_abs_diff_lower(recon.view(), g.view());

  Table t({"check", "value"});
  t.add_row({"max |L·Lᵀ − G| (lower)", fmt_double(factor_err, 4)});
  t.add_row({"max |x − x*|", fmt_double(err, 4)});
  t.print(std::cout);

  const bool ok = factor_err < 1e-8 && err < 1e-8;
  std::cout << "\nSPD solve " << (ok ? "PASSED" : "FAILED") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
