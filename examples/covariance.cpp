// Covariance: the paper's short-wide motivating application (§1).
//
// A sample matrix X holds d features (rows) by N observations (columns),
// d << N. The (scaled) covariance is C = (1/N)·X̃·X̃ᵀ where X̃ is the
// mean-centered data — exactly a short-wide SYRK, the Theorem 1 case-1
// regime where the 1D algorithm is optimal: columns (observations) are
// partitioned across ranks and only the d×d triangle is ever reduced.
//
//   $ ./examples/covariance [features] [observations] [procs]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/session.hpp"
#include "matrix/kernels.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace parsyrk;

int main(int argc, char** argv) {
  const std::size_t d = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 20000;
  const std::uint64_t p = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;

  std::cout << "Covariance of " << n << " observations of " << d
            << " correlated features on " << p << " processors\n\n";

  // Synthesize correlated samples: x = B·z with z standard normal, so the
  // true covariance is B·Bᵀ.
  Rng rng(2024);
  Matrix b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      b(i, j) = rng.uniform(-1.0, 1.0) + (i == j ? 1.5 : 0.0);
    }
  }
  Matrix x(d, n);
  std::vector<double> z(d);
  for (std::size_t s = 0; s < n; ++s) {
    for (auto& v : z) v = rng.normal();
    for (std::size_t i = 0; i < d; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j <= i; ++j) acc += b(i, j) * z[j];
      x(i, s) = acc;
    }
  }

  // Mean-center each feature.
  for (std::size_t i = 0; i < d; ++i) {
    double mean = 0.0;
    for (std::size_t s = 0; s < n; ++s) mean += x(i, s);
    mean /= static_cast<double>(n);
    for (std::size_t s = 0; s < n; ++s) x(i, s) -= mean;
  }

  // The SYRK: planner should land on the 1D algorithm (case 1).
  core::Session session(static_cast<int>(p));
  const core::SyrkRun run = core::syrk(session, core::SyrkRequest(x));
  std::cout << "Plan: " << run.plan << "\n";
  std::cout << "Communication: " << run.total.critical_path_words()
            << " words/rank vs bound "
            << fmt_double(run.bound.communicated, 6) << " — only the d(d+1)/2 "
            << "triangle is reduced, never the raw samples.\n\n";

  // Scale to the sample covariance and compare to the ground truth B·Bᵀ.
  Matrix cov = run.c;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      cov(i, j) /= static_cast<double>(n - 1);
    }
  }
  Matrix truth = syrk_reference(b.view());
  double max_err = 0.0, max_truth = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      max_err = std::max(max_err, std::abs(cov(i, j) - truth(i, j)));
      max_truth = std::max(max_truth, std::abs(truth(i, j)));
    }
  }

  Table t({"quantity", "value"});
  t.add_row({"algorithm", core::algorithm_name(run.plan.algorithm)});
  t.add_row({"max |Ĉ − BBᵀ|", fmt_double(max_err, 4)});
  t.add_row({"max |BBᵀ|", fmt_double(max_truth, 4)});
  t.add_row({"relative sampling error", fmt_double(max_err / max_truth, 4)});
  t.print(std::cout);

  // Statistical, not exact: O(1/√N) sampling noise.
  const bool ok = run.plan.algorithm == core::Algorithm::kOneD &&
                  max_err / max_truth < 10.0 / std::sqrt(static_cast<double>(n));
  std::cout << "\nCovariance estimation " << (ok ? "PASSED" : "FAILED")
            << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
